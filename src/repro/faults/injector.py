"""The fault injector: replaying availability events against a live system.

The :class:`FaultInjector` is the runtime half of the fault subsystem.  It
pulls the time-ordered :class:`~repro.faults.models.FaultEvent` stream of a
fault model and applies each event to the simulated multicluster:

* **capacity** — failed processors leave the cluster pool
  (:meth:`~repro.cluster.cluster.Cluster.mark_failed`) and repaired ones
  return, so ``idle_processors`` and every placement/grow decision built on
  it stay consistent with the availability model;
* **victims** — a hard failure strikes nodes uniformly at random (a
  multivariate-hypergeometric split over the idle pool, the local background
  jobs and the running KOALA jobs, drawn from a dedicated random-stream
  lane).  Local jobs are rigid and die with their node.  KOALA jobs are where
  the paper's story plays out: a **rigid** job is killed and resubmitted
  under the configurable retry policy, while a **malleable** job whose
  minimum size still fits *shrinks through* the failure and keeps computing;
* **events** — every action flows through the scheduler's
  :class:`~repro.policies.hooks.HookDispatcher` as typed events
  (``node_failed``, ``node_repaired``, ``job_failed``, ``job_rescued``), so
  placement and malleability policies can react like they do to any other
  scheduling event.

Jobs whose GRAM claim is still in flight hold no named allocation yet and
are not drawn as victims (their claim simply fails if the processors are
gone by the time GRAM reaches them); a whole-cluster outage therefore spares
in-flight stubs for the few simulated seconds claiming takes.

Graceful events (*drains*) kill nothing: the requested processors leave the
pool immediately as far as they are idle, and the remainder converts to
failed capacity as allocations release, modelling scheduled maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.faults.models import (
    KIND_REPAIR,
    FaultEvent,
    FaultRef,
)
from repro.koala.mrunner import MalleableRunner
from repro.policies.hooks import JobRescued, NodeFailed, NodeRepaired
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.allocation import Allocation
    from repro.cluster.cluster import Cluster
    from repro.koala.runners import JobRunner
    from repro.koala.scheduler import KoalaScheduler


@dataclass
class FaultStats:
    """Counters of everything the injector did (the resilience raw data)."""

    #: Availability events applied (after capping against cluster state).
    node_failures: int = 0
    node_repairs: int = 0
    #: Processors taken down / brought back over the whole run.
    processors_failed: int = 0
    processors_repaired: int = 0
    #: KOALA jobs killed by failures (kills of the same job count each time).
    jobs_killed: int = 0
    #: Killed jobs put back into the placement queue.
    resubmissions: int = 0
    #: Killed jobs abandoned because their retry budget ran out.
    jobs_lost: int = 0
    #: Malleable jobs that shrank through a failure instead of dying.
    shrink_rescues: int = 0
    #: Processors those rescues gave up.
    rescued_processors: int = 0
    #: Local (background) jobs killed by failures.
    local_jobs_killed: int = 0
    #: Processor-seconds of work destroyed by job kills.
    wasted_processor_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (native scalars only)."""
        return {
            "node_failures": int(self.node_failures),
            "node_repairs": int(self.node_repairs),
            "processors_failed": int(self.processors_failed),
            "processors_repaired": int(self.processors_repaired),
            "jobs_killed": int(self.jobs_killed),
            "resubmissions": int(self.resubmissions),
            "jobs_lost": int(self.jobs_lost),
            "shrink_rescues": int(self.shrink_rescues),
            "rescued_processors": int(self.rescued_processors),
            "local_jobs_killed": int(self.local_jobs_killed),
            "wasted_processor_seconds": float(self.wasted_processor_seconds),
        }


class FaultInjector:
    """Drives a fault model against a scheduler and its multicluster.

    Parameters
    ----------
    env, scheduler:
        Simulation environment and the (already constructed) scheduler whose
        system the faults strike.
    reference:
        A ``fault:`` reference string or parsed :class:`FaultRef` naming the
        model and its parameters (including the injector-level ``retries``
        budget).
    streams:
        The experiment's named random streams.  The model draws from the
        ``"faults"`` lane and victim selection from ``"faults:victims"``, so
        fault injection never perturbs workload, background or application
        randomness — a run with faults disabled is bit-for-bit the run it
        always was.
    """

    def __init__(
        self,
        env: Environment,
        scheduler: "KoalaScheduler",
        reference: Union[str, FaultRef],
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.env = env
        self.scheduler = scheduler
        self.multicluster = scheduler.multicluster
        self.ref = (
            reference if isinstance(reference, FaultRef) else FaultRef.parse(reference)
        )
        streams = streams or RandomStreams(seed=0)
        self._victim_rng = streams["faults:victims"]
        layout = {
            cluster.name: cluster.total_processors for cluster in self.multicluster
        }
        self._events: Iterator[FaultEvent] = self.ref.build(streams["faults"], layout)
        #: Maximum resubmissions per killed job (``None`` = unlimited).
        self.retries = self.ref.retries()
        self.stats = FaultStats()
        self._resubmission_counts: Dict[int, int] = {}
        self._pending_drain: Dict[str, int] = {}
        for cluster in self.multicluster:
            self._pending_drain[cluster.name] = 0
            cluster.add_release_listener(self._on_release)
        self._process = env.process(self._inject_loop())

    # -- event loop -----------------------------------------------------------

    def _inject_loop(self):
        for event in self._events:
            delay = event.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            elif delay < 0:
                # Applying a past event at the current time would silently
                # distort the availability timeline; a model yielding
                # out-of-order events is a bug that must surface loudly.
                raise ValueError(
                    f"fault model {self.ref.canonical()!r} produced an "
                    f"out-of-order event at t={event.time:g} "
                    f"(simulation already at t={self.env.now:g})"
                )
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        if event.cluster not in self.multicluster:
            raise ValueError(
                f"fault event names unknown cluster {event.cluster!r}"
            )
        cluster = self.multicluster.cluster(event.cluster)
        if event.kind == KIND_REPAIR:
            self._apply_repair(cluster, event.processors)
        elif event.graceful:
            self._apply_drain(cluster, event.processors)
        else:
            self._apply_failure(cluster, event.processors)

    # -- repairs ---------------------------------------------------------------

    def _apply_repair(self, cluster: "Cluster", count: int) -> None:
        name = cluster.name
        pending = self._pending_drain.get(name, 0)
        cancelled = min(pending, count)
        if cancelled:
            # Nodes that were draining but never actually emptied: the repair
            # simply cancels the pending drain, no capacity changes hands.
            self._pending_drain[name] = pending - cancelled
        restore = min(count - cancelled, cluster.failed_processors)
        if restore <= 0:
            return
        cluster.mark_repaired(restore)
        self.stats.node_repairs += 1
        self.stats.processors_repaired += restore
        self.scheduler.emit(NodeRepaired(self.env.now, name, restore))

    # -- drains (graceful) -------------------------------------------------------

    def _apply_drain(self, cluster: "Cluster", count: int) -> None:
        name = cluster.name
        pending = self._pending_drain.get(name, 0)
        count = min(count, cluster.available_processors - pending)
        if count <= 0:
            return
        immediate = min(count, cluster.idle_processors)
        if immediate > 0:
            cluster.mark_failed(immediate)
            self.stats.processors_failed += immediate
        remainder = count - immediate
        if remainder > 0:
            self._pending_drain[name] = pending + remainder
        self.stats.node_failures += 1
        self.scheduler.emit(NodeFailed(self.env.now, name, count, graceful=True))

    def _on_release(self, allocation: "Allocation") -> None:
        # Convert pending drains into failed capacity as processors fall idle.
        cluster = allocation.cluster
        pending = self._pending_drain.get(cluster.name, 0)
        if not pending:
            return
        take = min(pending, cluster.idle_processors)
        if take <= 0:
            return
        cluster.mark_failed(take)
        self._pending_drain[cluster.name] = pending - take
        self.stats.processors_failed += take

    # -- hard failures -----------------------------------------------------------

    def _apply_failure(self, cluster: "Cluster", count: int) -> None:
        count = min(count, cluster.available_processors)
        if count <= 0:
            return
        name = cluster.name
        # The strike pool: idle nodes, local (background) jobs and running
        # KOALA jobs, in a fixed deterministic order.  Processors held by
        # in-flight GRAM claims are not in the pool (see module docstring).
        local_allocations = [
            allocation
            for allocation in cluster.active_allocations
            if allocation.kind == "local"
        ]
        runners = self.scheduler.running_runners(name)
        buckets: List[Tuple[str, object, int]] = [("idle", None, cluster.idle_processors)]
        buckets.extend(
            ("local", allocation, allocation.processors)
            for allocation in local_allocations
        )
        buckets.extend(
            ("runner", runner, self._runner_weight(runner)) for runner in runners
        )
        pool = sum(weight for _, _, weight in buckets)
        struck = min(count, pool)
        if struck <= 0:
            return

        # Uniform strike over the pool: a sequential multivariate-
        # hypergeometric split assigns each bucket its share of the dead
        # nodes, without replacement.
        hits: List[int] = []
        remaining_pool = pool
        remaining_struck = struck
        for _, _, weight in buckets:
            if remaining_struck <= 0 or weight <= 0:
                hits.append(0)
                remaining_pool -= weight
                continue
            hit = int(
                self._victim_rng.hypergeometric(
                    weight, remaining_pool - weight, remaining_struck
                )
            )
            hits.append(hit)
            remaining_pool -= weight
            remaining_struck -= hit

        for (kind, target, _), hit in zip(buckets, hits):
            if hit <= 0:
                continue
            if kind == "idle":
                cluster.mark_failed(hit)
            elif kind == "local":
                self._strike_local(cluster, target, hit)
            else:
                self._strike_runner(cluster, target, hit)
        self.stats.node_failures += 1
        self.stats.processors_failed += struck
        self.scheduler.emit(NodeFailed(self.env.now, name, struck))

    @staticmethod
    def _runner_weight(runner: "JobRunner") -> int:
        """Processors of *runner* exposed to failures (its held GRAM jobs)."""
        return sum(gram_job.processors for gram_job in runner.gram_jobs)

    def _strike_local(self, cluster: "Cluster", allocation: "Allocation", hit: int) -> None:
        # Mark first, release second: the dead processors must never look
        # idle, not even within the instant the victim is dismantled.
        cluster.mark_failed(hit)
        if self.multicluster.local_rm(cluster.name).fail_allocation(allocation):
            self.stats.local_jobs_killed += 1

    def _strike_runner(self, cluster: "Cluster", runner: "JobRunner", hit: int) -> None:
        job = runner.job
        survivable = (
            isinstance(runner, MalleableRunner)
            and runner.application is not None
            and not runner.application.is_finished
            and hit < len(runner.gram_jobs)
            and runner.application.allocation - hit >= job.minimum_processors
            # The application's structural size constraint has the last word:
            # e.g. FT at 8 processors with a minimum of 5 has no acceptable
            # smaller size, so the mandatory shrink would be refused and the
            # job would keep computing on dead processors.  Preview it.
            and runner.preview_shrink(hit) >= hit
        )
        cluster.mark_failed(hit)
        if survivable:
            runner.survive_failure(hit)
            self.stats.shrink_rescues += 1
            self.stats.rescued_processors += hit
            self.scheduler.emit(JobRescued(self.env.now, job, cluster.name, hit))
            return
        application = runner.application
        resubmit = self._retry_allowed(job)
        reason = f"node failure on {cluster.name}"
        if not self.scheduler.fail_job(job, reason=reason, resubmit=resubmit):
            return  # pragma: no cover - the job finished in this very instant
        self.stats.jobs_killed += 1
        if application is not None and application.record.started:
            record = application.record
            elapsed = (record.finish_time or self.env.now) - (record.start_time or 0.0)
            if elapsed > 0:
                self.stats.wasted_processor_seconds += (
                    record.average_allocation * elapsed
                )
        if resubmit:
            self._resubmission_counts[job.job_id] = (
                self._resubmission_counts.get(job.job_id, 0) + 1
            )
            self.stats.resubmissions += 1
        else:
            self.stats.jobs_lost += 1

    def _retry_allowed(self, job) -> bool:
        if self.retries is None:
            return True
        return self._resubmission_counts.get(job.job_id, 0) < self.retries

    # -- reporting ----------------------------------------------------------------

    @property
    def pending_drains(self) -> Dict[str, int]:
        """Processors per cluster still waiting to drain (for inspection)."""
        return {
            name: pending
            for name, pending in self._pending_drain.items()
            if pending
        }

    def resilience_summary(self) -> Dict[str, Any]:
        """The run's resilience counters as a JSON-compatible mapping."""
        return self.stats.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultInjector {self.ref.canonical()!r} "
            f"failures={self.stats.node_failures} kills={self.stats.jobs_killed} "
            f"rescues={self.stats.shrink_rescues}>"
        )
