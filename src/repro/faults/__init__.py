"""Dynamic availability and fault injection.

The paper's motivation is a multicluster whose availability *changes while
jobs run*; this package makes that an experiment axis.  Fault **models**
(:mod:`repro.faults.models`) describe node churn, cluster outages, graceful
drains and file-based availability traces as deterministic event streams
referenced with ``fault:`` strings (``"fault:exp?mtbf=3600&mttr=600"``); the
**injector** (:mod:`repro.faults.injector`) replays a stream against the
simulated system — failed processors leave the cluster pools, rigid jobs hit
by a failure are killed and resubmitted under a configurable retry policy,
and malleable jobs *shrink through* failures when their minimum size still
fits.  Resilience metrics (kills, rescues, wasted work,
availability-normalised utilization) surface through
:class:`~repro.metrics.collector.ExperimentMetrics` whenever a fault model
is configured, and are entirely absent — bit for bit — when it is not.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.models import (
    FAULT_PREFIX,
    FaultEvent,
    FaultRef,
    cluster_drain,
    cluster_outage,
    exponential_churn,
    fault_fingerprint,
    fault_reference_string,
    is_fault_reference,
    known_fault_models,
    parse_fault_trace,
    register_fault_model,
    resolve_fault_model,
    weibull_churn,
)

__all__ = [
    "FAULT_PREFIX",
    "FaultEvent",
    "FaultInjector",
    "FaultRef",
    "FaultStats",
    "cluster_drain",
    "cluster_outage",
    "exponential_churn",
    "fault_fingerprint",
    "fault_reference_string",
    "is_fault_reference",
    "known_fault_models",
    "parse_fault_trace",
    "register_fault_model",
    "resolve_fault_model",
    "weibull_churn",
]
