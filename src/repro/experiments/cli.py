"""Command-line entry point: ``repro-cli`` (also installed as ``repro-experiment``).

Every figure, table and ablation of the paper is a *scenario* in the
declarative registry (:mod:`repro.experiments.scenarios`); the CLI is a thin
shell over the sweep engine that runs them.

Examples
--------
See what can be run::

    repro-cli list-scenarios

Reproduce Figure 7 on 4 worker processes (cached: a second invocation after
only plotting-layer edits is near-instant)::

    repro-cli run figure7 --jobs 4

Run a reduced Figure 8 (60 jobs instead of 300, fresh seed, no cache)::

    repro-cli run figure8 --job-count 60 --seed 1 --no-cache

Sweep a scenario and print the merged summary table only::

    repro-cli sweep ablation-placement --jobs 4

Run one custom configuration outside any scenario::

    repro-cli custom --workload Wmr --policy EGS --approach PRA --job-count 120

See every registered policy of every axis, with parameters::

    repro-cli list-policies

Run a parameterised policy (``--policy-arg`` repeats; values are Python
literals)::

    repro-cli custom --policy AVERAGE_STEAL --policy-arg balance=absolute \\
        --placement EASY --placement-arg reserve_depth=2

Policies registered in your own module are available to every command after
``--policy-module``::

    repro-cli --policy-module my_policies list-policies

Trace-driven workloads: list the available traces (the bundled deterministic
DAS-3-style synthetic trace plus any ``.swf`` files in ``traces/`` or
``$REPRO_TRACES_DIR``), replay one through the trace scenarios, or point any
run at a trace with transformations::

    repro-cli list-traces
    repro-cli run trace-replay --job-count 60
    repro-cli run --scenario trace-load-sweep --jobs 4
    repro-cli run trace-replay --trace das3-synthetic --load-factor 2 \\
        --trace-malleable 0.5 --trace-max-procs 85
    repro-cli custom --trace path/to/archive.swf --policy EGS --job-count 200

Fault injection: list the registered fault models, run the fault scenarios,
or strike any run with node churn / an availability trace::

    repro-cli list-faults
    repro-cli run fault-sweep --jobs 4
    repro-cli run churn-replay --job-count 40
    repro-cli custom --policy EGS --mtbf 3600 --mttr 600 --job-count 60
    repro-cli custom --fault 'fault:outage?cluster=delft&at=1800&duration=900'
    repro-cli sweep figure7 --fault-trace outages.flt

The experiment service: start a long-running daemon owning a worker pool
and the content-addressed result store, then submit work to it from any
number of concurrent clients (identical configs deduplicate and coalesce)::

    repro-cli serve --workers 4 --store-budget 512M &
    repro-cli client status
    repro-cli client run-and-wait --workload Wm --policy EGS --job-count 40
    repro-cli client submit --workload Wmr --seeds 0 1 2 3
    repro-cli client shutdown

Observability: write a structured trace of any run (every kernel event,
queue snapshot and scheduler hook), then inspect it; ``--quiet`` and
``$REPRO_LOG_LEVEL`` control the stderr log level::

    repro-cli run figure7 --trace-out traces/
    repro-cli trace summary traces/figure7-*.jsonl
    repro-cli trace timeline traces/figure7-*.jsonl
    repro-cli trace diff traces/a.jsonl traces/b.jsonl
    repro-cli client metrics

Runs that hit the simulation time limit before every job finished log a
WARNING to stderr and carry ``"truncated": true`` in their result JSON.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.engine import ResultCache, default_cache_dir
from repro.experiments.scenarios import (
    get_scenario,
    iter_scenarios,
    run_scenario,
    scenario_report,
)
from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.metrics.reports import metrics_to_csv, summary_table
from repro.policies.registry import (
    iter_registered,
    policy_doc,
    policy_signature,
)


def _policy_arg(text: str) -> tuple:
    """Parse one ``key=value`` policy parameter (value as a Python literal)."""
    key, separator, value = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    from repro.policies.registry import parse_literal

    return key.strip(), parse_literal(value.strip())


def _import_policy_modules(modules: Sequence[str]) -> None:
    """Import user modules so their ``@register`` decorators run.

    Accepts dotted module names and plain ``.py`` file paths, so
    ``repro-cli --policy-module my_policies.py list-policies`` works without
    packaging anything.  The resolved references are also exported via
    :data:`~repro.policies.registry.POLICY_MODULES_ENV` so the worker
    processes of a parallel sweep (which re-import ``repro`` from scratch
    under spawn/forkserver start methods) register the same policies.
    """
    from repro.policies.registry import POLICY_MODULES_ENV, load_policy_modules

    resolved = [
        str(Path(name).resolve()) if Path(name).suffix == ".py" else name
        for name in modules
    ]
    load_policy_modules(resolved)
    merged = [
        part
        for part in os.environ.get(POLICY_MODULES_ENV, "").split(os.pathsep)
        if part
    ]
    for name in resolved:
        if name not in merged:
            merged.append(name)
    os.environ[POLICY_MODULES_ENV] = os.pathsep.join(merged)


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    """Options selecting a trace-driven workload and its transformations."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="NAME_OR_PATH",
        help="replay this trace (see list-traces; a .swf path also works) "
        "instead of the configured workload",
    )
    parser.add_argument(
        "--load-factor",
        type=float,
        default=None,
        metavar="X",
        help="rescale the trace's inter-arrival gaps by 1/X (2 = double load)",
    )
    parser.add_argument(
        "--trace-window",
        default=None,
        metavar="START:END",
        help="replay only the records submitted in [START, END) seconds "
        "of the trace's own clock (either side may be empty)",
    )
    parser.add_argument(
        "--trace-max-procs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="shrink per-job processor requests to at most N",
    )
    parser.add_argument(
        "--trace-malleable",
        type=float,
        default=None,
        metavar="F",
        help="fraction of replayed jobs tagged malleable (default 1.0)",
    )


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    """Options striking the run with a fault model."""
    parser.add_argument(
        "--fault",
        default=None,
        metavar="REF",
        help="inject faults from this model reference, e.g. "
        "'fault:exp?mtbf=3600&mttr=600' (see list-faults)",
    )
    parser.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="SECONDS",
        help="shorthand for --fault 'fault:exp?mtbf=SECONDS': exponential "
        "per-node churn with this mean time between failures",
    )
    parser.add_argument(
        "--mttr",
        type=float,
        default=None,
        metavar="SECONDS",
        help="mean time to repair for --mtbf (default 600)",
    )
    parser.add_argument(
        "--fault-trace",
        default=None,
        metavar="PATH",
        help="replay this availability trace file "
        "(shorthand for --fault 'fault:trace?path=PATH')",
    )


def _fault_reference(args: argparse.Namespace) -> Optional[str]:
    """The canonical ``fault:`` reference the fault options ask for."""
    fault = getattr(args, "fault", None)
    mtbf = getattr(args, "mtbf", None)
    mttr = getattr(args, "mttr", None)
    fault_trace = getattr(args, "fault_trace", None)
    chosen = [option for option in (fault, mtbf, fault_trace) if option is not None]
    if len(chosen) > 1:
        raise ValueError("--fault, --mtbf and --fault-trace are mutually exclusive")
    if mttr is not None and mtbf is None:
        raise ValueError("--mttr requires --mtbf")
    if not chosen:
        return None
    from repro.faults.models import FaultRef

    if mtbf is not None:
        params = {"mtbf": f"{mtbf:g}"}
        if mttr is not None:
            params["mttr"] = f"{mttr:g}"
        reference = "fault:exp?" + "&".join(f"{k}={v}" for k, v in params.items())
    elif fault_trace is not None:
        reference = f"fault:trace?path={fault_trace}"
    else:
        reference = fault
    # Validate now: a bad reference must surface as an argument error, not a
    # traceback mid-sweep.
    return FaultRef.parse(reference).validate().canonical()


def _warn_truncated(results, *, stream=None) -> None:
    """Warn visibly for every run that hit the time limit.

    Routed through the :mod:`repro.obs.log` logger (so ``--quiet`` and
    ``$REPRO_LOG_LEVEL`` apply); an explicit *stream* bypasses logging and
    prints directly, which tests use to capture the message.
    """
    truncated = [label for label, result in results.items() if result.truncated]
    if not truncated:
        return
    message = (
        f"{len(truncated)} run(s) hit the simulation time limit before "
        f"every job finished; their metrics are partial (truncated=true in the "
        f"result JSON): {', '.join(truncated)}"
    )
    if stream is not None:
        print(f"WARNING: {message}", file=stream)
        return
    from repro.obs.log import get_logger

    get_logger("cli").warning(message)


def _trace_reference(args: argparse.Namespace) -> Optional[str]:
    """The canonical ``trace:`` workload reference the trace options ask for."""
    trace_options = {
        "load_factor": getattr(args, "load_factor", None),
        "window": getattr(args, "trace_window", None),
        "max_procs": getattr(args, "trace_max_procs", None),
        "malleable": getattr(args, "trace_malleable", None),
    }
    trace = getattr(args, "trace", None)
    if trace is None:
        if any(value is not None for value in trace_options.values()):
            raise ValueError(
                "--load-factor/--trace-window/--trace-max-procs/--trace-malleable "
                "require --trace"
            )
        return None
    from repro.workloads.traces import TraceRef

    ref = TraceRef.parse(trace)
    params = dict(ref.params)
    for key, value in trace_options.items():
        if value is not None:
            params[key] = value
    # Validate now (trace exists, parameters well-formed): a bad reference
    # must surface as an argument error, not a traceback mid-sweep.
    return TraceRef(trace=ref.trace, params=params).validate().canonical()


def _seed_list(text: str) -> tuple:
    """Parse a comma-separated seed grid (``"0,1,2"``)."""
    try:
        seeds = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")
    if not seeds:
        raise argparse.ArgumentTypeError("at least one seed is required")
    if any(seed < 0 for seed in seeds):
        raise argparse.ArgumentTypeError(f"seeds must be non-negative, got {text!r}")
    if len(set(seeds)) != len(seeds):
        raise argparse.ArgumentTypeError(f"seeds must be distinct, got {text!r}")
    return seeds


def _name_list(text: str) -> tuple:
    """Parse a comma-separated name list; ``none`` entries become ``None``."""
    names = tuple(
        None if part.strip().lower() in ("none", "off") else part.strip()
        for part in text.split(",")
        if part.strip()
    )
    if not names:
        raise argparse.ArgumentTypeError("at least one entry is required")
    return names


def _float_list(text: str) -> tuple:
    """Parse a comma-separated list of floats."""
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("at least one entry is required")
    return values


def _confidence(text: str) -> float:
    value = float(text)
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(
            f"confidence must lie strictly in (0, 1), got {value}"
        )
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def _add_scenario_selector(parser: argparse.ArgumentParser) -> None:
    """Scenario selection, positionally or via ``--scenario``."""
    parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name (see list-scenarios)",
    )
    parser.add_argument(
        "--scenario",
        dest="scenario_option",
        default=None,
        help="scenario name (alternative to the positional argument)",
    )


def _selected_scenario(args: argparse.Namespace) -> str:
    """The scenario both spellings agree on; raises ValueError otherwise."""
    if not args.scenario and not args.scenario_option:
        raise ValueError("a scenario is required (positional or --scenario)")
    if args.scenario and args.scenario_option and args.scenario != args.scenario_option:
        raise ValueError(
            f"conflicting scenarios: {args.scenario!r} and --scenario "
            f"{args.scenario_option!r}"
        )
    return args.scenario or args.scenario_option


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every command that executes experiment runs."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes to fan the runs out over (default 1: serial)",
    )
    parser.add_argument(
        "--job-count",
        type=_positive_int,
        default=None,
        help="jobs per workload (default: scenario's)",
    )
    parser.add_argument(
        "--seed", type=_non_negative_int, default=None, help="root random seed"
    )
    parser.add_argument(
        "--threshold",
        type=_non_negative_int,
        default=None,
        help="idle processors reserved for local users when growing",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated-time safety bound per run (default: config's); runs "
        "cut off by it warn and are flagged truncated",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read or write the result cache"
    )
    parser.add_argument(
        "--refresh", action="store_true", help="ignore cached results but store fresh ones"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: $REPRO_CACHE_DIR or {default_cache_dir()})",
    )
    _add_trace_out_option(parser)


def _add_trace_out_option(parser: argparse.ArgumentParser) -> None:
    """The structured-tracing activation flag (see :mod:`repro.obs.trace`)."""
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        metavar="FILE_OR_DIR",
        help="write a structured trace of every run (kernel events, queue "
        "snapshots, scheduler hooks) to this .jsonl/.gz file or directory; "
        "$REPRO_TRACE sets a default target. Tracing participates in the "
        "cache key, so traced runs never alias untraced cached results",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of ``repro-cli``."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Reproduce the experiments of 'Scheduling Malleable Applications "
        "in Multicluster Systems' (CLUSTER 2007).",
    )
    parser.add_argument("--output", help="write the report to this file instead of stdout")
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress WARNING/INFO log output (errors still print); "
        "$REPRO_LOG_LEVEL sets an explicit level instead",
    )
    parser.add_argument(
        "--policy-module",
        action="append",
        default=[],
        metavar="MODULE",
        help="import this module (dotted name or .py path) first, so policies "
        "it @registers become available; may be repeated",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-scenarios", help="list every registered scenario with its run count"
    )

    subparsers.add_parser(
        "list-policies",
        help="list every registered policy (all kinds) with its parameters",
    )

    subparsers.add_parser(
        "list-traces",
        help="list every available trace (registry + traces/ + $REPRO_TRACES_DIR)",
    )

    subparsers.add_parser(
        "list-faults",
        help="list every registered fault model with its parameters",
    )

    run = subparsers.add_parser(
        "run", help="run a scenario and print its full figure/table report"
    )
    _add_scenario_selector(run)
    _add_sweep_options(run)
    _add_trace_options(run)
    _add_fault_options(run)

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario's config grid and print the merged summary"
    )
    _add_scenario_selector(sweep)
    _add_sweep_options(sweep)
    _add_trace_options(sweep)
    _add_fault_options(sweep)
    sweep.add_argument(
        "--csv", action="store_true", help="emit per-job CSV (all runs concatenated)"
    )

    from repro.service.cli import add_client_parser, add_serve_parser

    add_serve_parser(subparsers)
    add_client_parser(subparsers)

    from repro.obs.cli import add_trace_parser

    add_trace_parser(subparsers)

    custom = subparsers.add_parser(
        "custom", help="run a single custom configuration outside any scenario"
    )
    custom.add_argument(
        "--workload",
        default="Wm",
        help="Wm, Wmr, W'm, W'mr or a trace reference ('trace:das3-synthetic?load_factor=2')",
    )
    custom.add_argument(
        "--policy", default="FPSMA", help="FPSMA, EGS, EQUIPARTITION, FOLDING or none"
    )
    custom.add_argument("--approach", default="PRA", help="PRA or PWA")
    custom.add_argument(
        "--placement", default="WF", help="WF, CF, CM, FCM or EASY (see list-policies)"
    )
    custom.add_argument(
        "--policy-arg",
        action="append",
        type=_policy_arg,
        default=[],
        metavar="KEY=VALUE",
        help="parameter for --policy (repeatable; values are Python literals)",
    )
    custom.add_argument(
        "--placement-arg",
        action="append",
        type=_policy_arg,
        default=[],
        metavar="KEY=VALUE",
        help="parameter for --placement (repeatable)",
    )
    custom.add_argument("--job-count", type=_positive_int, default=300)
    custom.add_argument("--seed", type=_non_negative_int, default=0)
    custom.add_argument("--threshold", type=_non_negative_int, default=0)
    custom.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated-time safety bound (default: config's)",
    )
    custom.add_argument("--csv", action="store_true", help="emit per-job CSV instead of a summary")
    _add_trace_options(custom)
    _add_fault_options(custom)
    _add_trace_out_option(custom)

    tournament = subparsers.add_parser(
        "tournament",
        help="replicate a scenario across a seed grid and rank its variants "
        "with bootstrap confidence intervals and a Pareto frontier",
    )
    _add_scenario_selector(tournament)
    tournament.add_argument(
        "--seeds",
        type=_seed_list,
        default=(0, 1, 2),
        metavar="S0,S1,...",
        help="comma-separated root seeds, one replica per seed (default 0,1,2)",
    )
    tournament.add_argument(
        "--confidence",
        type=_confidence,
        default=0.95,
        metavar="LEVEL",
        help="two-sided bootstrap confidence level (default 0.95)",
    )
    tournament.add_argument(
        "--resamples",
        type=_positive_int,
        default=1000,
        metavar="N",
        help="bootstrap resamples per interval (default 1000)",
    )
    tournament.add_argument(
        "--metric",
        default="mean_response_time",
        help="summary metric the ranking orders by (default mean_response_time)",
    )
    tournament.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes to fan the replicas out over (default 1: serial)",
    )
    tournament.add_argument(
        "--job-count",
        type=_positive_int,
        default=None,
        help="jobs per workload (default: scenario's)",
    )
    tournament.add_argument(
        "--no-cache", action="store_true", help="do not read or write the result cache"
    )
    tournament.add_argument(
        "--refresh", action="store_true", help="ignore cached results but store fresh ones"
    )
    tournament.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: $REPRO_CACHE_DIR or {default_cache_dir()})",
    )
    tournament.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="run the grid on the experiment daemon listening on this Unix "
        "socket (batch submission; --jobs/--cache-dir do not apply)",
    )
    tournament.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="daemon-side wait bound per replica (with --socket)",
    )
    grid = tournament.add_argument_group(
        "grid flags (build a custom policy x load x fault grid instead of a "
        "registered scenario; only valid without --scenario or with "
        "--scenario tournament)"
    )
    grid.add_argument(
        "--policies",
        type=_name_list,
        default=None,
        metavar="P0,P1,...",
        help="malleability policies to enter ('none' = no malleability)",
    )
    grid.add_argument(
        "--trace",
        default=None,
        metavar="NAME",
        help="trace the grid replays (default das3-synthetic)",
    )
    grid.add_argument(
        "--load-factors",
        type=_float_list,
        default=None,
        metavar="X0,X1,...",
        help="arrival load factors to sweep (default 1,2)",
    )
    grid.add_argument(
        "--faults",
        type=_name_list,
        default=None,
        metavar="REF0,REF1,...",
        help="fault-model references to sweep ('none' = fault-free)",
    )

    shard = subparsers.add_parser(
        "shard-replay",
        help="replay the shard-replay scenario in parallel time shards "
        "(exact: stitched metrics equal a serial run's)",
    )
    shard.add_argument("--job-count", type=_positive_int, default=100_000)
    shard.add_argument("--seed", type=_non_negative_int, default=0)
    shard.add_argument(
        "--min-gap",
        type=float,
        default=None,
        metavar="SECONDS",
        help="minimum arrival gap at which the workload is cut (default 600)",
    )
    shard.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes (default: min(4, CPU count))",
    )
    shard.add_argument(
        "--sequential",
        action="store_true",
        help="replay the windows in-process, one by one (debugging aid)",
    )

    ckpt = subparsers.add_parser(
        "checkpointed",
        help="run a scenario's first variant with periodic checkpoints and "
        "streaming metrics; resumable via --resume",
    )
    _add_scenario_selector(ckpt)
    ckpt.add_argument("--job-count", type=_positive_int, default=None)
    ckpt.add_argument("--seed", type=_non_negative_int, default=0)
    ckpt.add_argument(
        "--every",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="simulated seconds between checkpoints (default 3600)",
    )
    ckpt.add_argument(
        "--checkpoint-path",
        metavar="FILE",
        help="write numbered checkpoint files derived from FILE "
        "(FILE's stem gains -NNNN per boundary)",
    )
    ckpt.add_argument(
        "--checkpoint-store",
        metavar="DIR",
        help="persist checkpoints content-addressed under DIR",
    )
    ckpt.add_argument(
        "--resume",
        metavar="FILE",
        help="restore this checkpoint file first and continue from it",
    )
    ckpt.add_argument(
        "--mode",
        choices=("auto", "native", "replay"),
        default="auto",
        help="capture mode: 'native' (exact state, supported configs only), "
        "'replay' (re-simulate to the capture instant; any config) or "
        "'auto' (native when supported, replay otherwise; the default)",
    )
    return parser


def _cache_from(args: argparse.Namespace) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _overrides_from(args: argparse.Namespace) -> Optional[dict]:
    overrides: dict = {}
    if args.threshold is not None:
        overrides["grow_threshold"] = args.threshold
    if getattr(args, "time_limit", None) is not None:
        overrides["time_limit"] = float(args.time_limit)
    workload = _trace_reference(args)
    if workload is not None:
        overrides["workload"] = workload
    fault = _fault_reference(args)
    if fault is not None:
        overrides["fault_model"] = fault
    if getattr(args, "trace_out", None) is not None:
        overrides["trace"] = args.trace_out
    return overrides or None


def _list_policies_report() -> str:
    lines = ["Registered policies:", ""]
    current_kind = None
    for kind, name, cls in iter_registered():
        if kind != current_kind:
            if current_kind is not None:
                lines.append("")
            lines.append(f"{kind}:")
            current_kind = kind
        signature = policy_signature(cls) or "(no parameters)"
        doc = policy_doc(cls)
        lines.append(f"  {name:<16} {signature}")
        if doc:
            lines.append(f"  {'':<16} {doc}")
    lines.append("")
    lines.append(
        "Use a policy by name ('EGS'), with parameters ('EASY?reserve_depth=2'\n"
        "or --policy-arg reserve_depth=2), in configs, scenarios and this CLI.\n"
        "Register your own with @repro.policies.register and --policy-module."
    )
    return "\n".join(lines)


def _list_traces_report() -> str:
    from repro.workloads.traces import TRACES_DIR_ENV, known_traces, trace_directories

    lines = ["Available traces:", ""]
    for name, description in known_traces():
        lines.append(f"  {name:<24} {description}")
    searched = ", ".join(str(path) for path in trace_directories())
    lines.append("")
    lines.append(f"(.swf files are discovered in: {searched}; set ${TRACES_DIR_ENV} to add a directory)")
    lines.append(
        "Replay one with: repro-cli run trace-replay --trace <name> "
        "[--load-factor X] [--trace-window A:B] [--trace-max-procs N] "
        "[--trace-malleable F]\n"
        "or as a workload anywhere: --workload 'trace:<name>?load_factor=2'"
    )
    return "\n".join(lines)


def _list_faults_report() -> str:
    from repro.faults.models import known_fault_models

    lines = ["Registered fault models:", ""]
    for name, description in known_fault_models():
        lines.append(f"  {name:<12} {description}")
    lines.append("")
    lines.append(
        "Strike a run with: repro-cli run <scenario> --fault 'fault:<model>?key=value&...'\n"
        "Shorthands: --mtbf SECONDS [--mttr SECONDS] (exponential churn), "
        "--fault-trace PATH (availability trace file).\n"
        "The reference also works as the fault_model field of any "
        "ExperimentConfig; add retries=N to cap resubmissions of killed jobs.\n"
        "Built-in fault scenarios: fault-sweep (MTBF x policy grid) and "
        "churn-replay (malleable vs rigid under identical churn)."
    )
    return "\n".join(lines)


def _list_scenarios_report() -> str:
    lines = ["Registered scenarios:", ""]
    for spec in iter_scenarios():
        runs = "static report" if spec.is_static else f"{spec.run_count()} runs"
        lines.append(f"  {spec.name:<24} {runs:<14} {spec.title}")
    lines.append("")
    lines.append("Run one with: repro-cli run <name> [--jobs N] [--job-count N] [--seed N]")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.obs.log import setup_logging

    setup_logging(quiet=args.quiet)

    if args.policy_module:
        try:
            _import_policy_modules(args.policy_module)
        except Exception as error:  # registration errors included, not just ImportError
            parser.error(f"cannot import policy module: {error}")
            return 2  # pragma: no cover - parser.error raises

    if args.command in ("serve", "client"):
        from repro.service.cli import cmd_client, cmd_serve

        return cmd_serve(args) if args.command == "serve" else cmd_client(args)

    if args.command == "trace":
        from repro.obs.cli import cmd_trace

        return cmd_trace(args)

    if args.command == "list-scenarios":
        report = _list_scenarios_report()
    elif args.command == "list-policies":
        report = _list_policies_report()
    elif args.command == "list-traces":
        report = _list_traces_report()
    elif args.command == "list-faults":
        report = _list_faults_report()
    elif args.command in ("run", "sweep"):
        try:
            spec = get_scenario(_selected_scenario(args))
        except ValueError as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        if spec.is_static:
            if args.command == "sweep":
                parser.error(f"scenario {spec.name!r} is static; use 'run' instead")
                return 2  # pragma: no cover
            report = scenario_report(spec)
        else:
            try:
                overrides = _overrides_from(args)
            except ValueError as error:
                parser.error(str(error))
                return 2  # pragma: no cover - parser.error raises
            results = run_scenario(
                spec,
                job_count=args.job_count,
                seed=args.seed,
                jobs=args.jobs,
                cache=_cache_from(args),
                refresh=args.refresh,
                overrides=overrides,
            )
            _warn_truncated(results)
            if args.command == "run":
                report = scenario_report(spec, results)
            elif getattr(args, "csv", False):
                report = "\n".join(
                    metrics_to_csv(result.metrics) for result in results.values()
                )
            else:
                report = summary_table(
                    {label: r.metrics for label, r in results.items()},
                    title=f"Sweep {spec.name} ({len(results)} runs)",
                )
    elif args.command == "tournament":
        from repro.stats import run_tournament, tournament_report

        grid_flags = (
            args.policies is not None
            or args.trace is not None
            or args.load_factors is not None
            or args.faults is not None
        )
        try:
            name = args.scenario or args.scenario_option
            if grid_flags:
                if name is not None and name != "tournament":
                    raise ValueError(
                        "grid flags (--policies/--trace/--load-factors/--faults) "
                        f"build a custom grid and cannot be combined with "
                        f"scenario {name!r}"
                    )
                from repro.experiments.scenarios import tournament_scenario

                grid_kwargs: dict = {"name": "tournament-custom"}
                if args.policies is not None:
                    grid_kwargs["policies"] = args.policies
                if args.trace is not None:
                    grid_kwargs["trace"] = args.trace
                if args.load_factors is not None:
                    grid_kwargs["load_factors"] = args.load_factors
                if args.faults is not None:
                    grid_kwargs["fault_models"] = args.faults
                spec = tournament_scenario(**grid_kwargs)
            else:
                spec = get_scenario(name or "tournament")
        except ValueError as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        client = None
        if args.socket:
            from repro.service.client import ServiceClient

            client = ServiceClient(socket_path=args.socket)
        try:
            if client is not None and (
                args.jobs != 1 or args.no_cache or args.refresh or args.cache_dir
            ):
                raise ValueError(
                    "--socket delegates execution to the daemon; "
                    "--jobs/--no-cache/--refresh/--cache-dir do not apply"
                )
            result = run_tournament(
                spec,
                seeds=args.seeds,
                rank_metric=args.metric,
                confidence=args.confidence,
                resamples=args.resamples,
                job_count=args.job_count,
                jobs=args.jobs,
                cache=None if client is not None else _cache_from(args),
                refresh=args.refresh,
                client=client,
                timeout=args.timeout,
            )
        except (KeyError, ValueError, ConnectionError, OSError) as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        finally:
            if client is not None:
                client.close()
        if result.truncated_entrants:
            print(
                "warning: truncated replicas (metrics partial): "
                + ", ".join(result.truncated_entrants),
                file=sys.stderr,
            )
        report = tournament_report(result)
    elif args.command == "shard-replay":
        from repro.checkpoint import CheckpointUnsupported
        from repro.checkpoint.shard import DEFAULT_MIN_GAP, shard_bench_config, shard_replay

        config = shard_bench_config(args.job_count, args.seed)
        try:
            result = shard_replay(
                config,
                min_gap=args.min_gap if args.min_gap is not None else DEFAULT_MIN_GAP,
                workers=args.workers,
                force_sequential=args.sequential,
            )
        except CheckpointUnsupported as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        lines = [
            f"Sharded replay: {args.job_count} jobs, seed {args.seed}",
            f"  windows:        {len(result.windows)} "
            f"({result.valid_windows} valid, workers={result.workers})",
            f"  fallback:       "
            + (
                "none"
                if result.fallback_from is None
                else f"serial tail from window {result.fallback_from}"
            ),
            f"  completed:      {result.metrics.jobs} jobs "
            f"(all done: {result.all_done})",
            f"  events:         {result.events_processed}",
            f"  metrics digest: {result.metrics.digest}",
        ]
        report = "\n".join(lines)
    elif args.command == "checkpointed":
        from repro.checkpoint import (
            CheckpointError,
            CheckpointStore,
            native_unsupported_reason,
            resume_run,
            run_checkpointed,
        )

        try:
            spec = get_scenario(_selected_scenario(args))
        except ValueError as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        if spec.is_static:
            parser.error(f"scenario {spec.name!r} is static and cannot be run")
            return 2  # pragma: no cover - parser.error raises
        _label, config = spec.expand(job_count=args.job_count, seed=args.seed)[0]
        mode = args.mode
        if mode == "auto":
            mode = "replay" if native_unsupported_reason(config, None) else "native"
        try:
            resumed = resume_run(args.resume) if args.resume else None
            if resumed is not None and resumed.config.to_dict() != config.to_dict():
                parser.error(
                    f"checkpoint {args.resume} was captured from a different "
                    "configuration than the selected scenario/--job-count/--seed"
                )
                return 2  # pragma: no cover - parser.error raises
            out = run_checkpointed(
                config,
                checkpoint_every=args.every,
                store=(
                    CheckpointStore(args.checkpoint_store)
                    if args.checkpoint_store
                    else None
                ),
                path=args.checkpoint_path,
                mode=mode,
                run=resumed,
            )
        except (CheckpointError, OSError, ValueError) as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        window = out["window"]
        lines = [
            f"Checkpointed run: {spec.name}, seed {args.seed}",
            f"  completed:      {window.jobs} jobs (all done: {out['all_done']})",
            f"  simulated time: {out['simulated_time']:.0f}s",
            f"  events:         {out['events_processed']}",
            f"  checkpoints:    {out['checkpoints']}",
            f"  metrics digest: {window.digest}",
        ]
        for target in out["checkpoint_paths"]:
            lines.append(f"  wrote {target}")
        for key in out["checkpoint_keys"]:
            lines.append(f"  stored {key}")
        report = "\n".join(lines)
    elif args.command == "custom":
        policy = None if args.policy.lower() in ("none", "off") else args.policy
        if policy is None and args.policy_arg:
            parser.error("--policy-arg requires a --policy other than 'none'")
            return 2  # pragma: no cover - parser.error raises
        if policy is not None and args.policy_arg:
            policy = {"name": policy, "params": dict(args.policy_arg)}
        placement = args.placement
        if args.placement_arg:
            placement = {"name": placement, "params": dict(args.placement_arg)}
        try:
            workload = _trace_reference(args) or args.workload
            extra: dict = {}
            if args.time_limit is not None:
                extra["time_limit"] = float(args.time_limit)
            if args.trace_out is not None:
                extra["trace"] = args.trace_out
            # The validated builder is the single override surface: a bad
            # field or reference fails as an argument error, not a traceback.
            config = ExperimentConfig(name="cli-custom").with_overrides(
                workload=workload,
                job_count=args.job_count,
                malleability_policy=policy,
                approach=args.approach,
                placement_policy=placement,
                grow_threshold=args.threshold,
                seed=args.seed,
                fault_model=_fault_reference(args),
                **extra,
            )
        except (TypeError, ValueError) as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        result = run_experiment(config)
        _warn_truncated({result.label: result})
        if args.csv:
            report = metrics_to_csv(result.metrics)
        else:
            report = summary_table(
                {result.label: result.metrics}, title=f"Run {result.label} (seed {args.seed})"
            )
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        sys.stdout.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
