"""Command-line entry point: ``repro-experiment``.

Examples
--------
Regenerate the scaling curves of Figure 6::

    repro-experiment figure6

Run a reduced Figure 7 (60 jobs instead of 300, single seed)::

    repro-experiment figure7 --jobs 60 --seed 1

Run the full Figure 8 and write the report to a file::

    repro-experiment figure8 --jobs 300 --output figure8.txt

Run one custom configuration::

    repro-experiment run --workload Wmr --policy EGS --approach PRA --jobs 120
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.ablations import (
    ablation_report,
    run_approach_ablation,
    run_background_load_ablation,
    run_overhead_ablation,
    run_placement_ablation,
    run_policy_ablation,
    run_threshold_ablation,
)
from repro.experiments.figure6 import figure6_report, run_figure6
from repro.experiments.figure7 import figure7_report, run_figure7
from repro.experiments.figure8 import figure8_report, run_figure8
from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.metrics.reports import metrics_to_csv, summary_table


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of ``repro-experiment``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce the experiments of 'Scheduling Malleable Applications "
        "in Multicluster Systems' (CLUSTER 2007).",
    )
    parser.add_argument("--output", help="write the report to this file instead of stdout")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("figure6", help="execution-time scaling curves of FT and GADGET-2")

    for figure in ("figure7", "figure8"):
        sub = subparsers.add_parser(figure, help=f"reproduce {figure} (4 scheduler runs)")
        sub.add_argument("--jobs", type=int, default=300, help="jobs per workload (default 300)")
        sub.add_argument("--seed", type=int, default=0, help="root random seed")
        sub.add_argument(
            "--threshold", type=int, default=0, help="idle processors reserved for local users"
        )

    ablation = subparsers.add_parser("ablation", help="run one of the ablation sweeps")
    ablation.add_argument(
        "study",
        choices=["approach", "policy", "threshold", "overhead", "placement", "background"],
    )
    ablation.add_argument("--jobs", type=int, default=60)
    ablation.add_argument("--seed", type=int, default=0)

    run = subparsers.add_parser("run", help="run a single custom configuration")
    run.add_argument("--workload", default="Wm", help="Wm, Wmr, W'm or W'mr")
    run.add_argument("--policy", default="FPSMA", help="FPSMA, EGS, EQUIPARTITION, FOLDING or none")
    run.add_argument("--approach", default="PRA", help="PRA or PWA")
    run.add_argument("--placement", default="WF", help="WF, CF, CM or FCM")
    run.add_argument("--jobs", type=int, default=300)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--threshold", type=int, default=0)
    run.add_argument("--csv", action="store_true", help="emit per-job CSV instead of a summary")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "figure6":
        report = figure6_report(run_figure6())
    elif args.command == "figure7":
        results = run_figure7(job_count=args.jobs, seed=args.seed, grow_threshold=args.threshold)
        report = figure7_report(results)
    elif args.command == "figure8":
        results = run_figure8(job_count=args.jobs, seed=args.seed, grow_threshold=args.threshold)
        report = figure8_report(results)
    elif args.command == "ablation":
        runners = {
            "approach": run_approach_ablation,
            "policy": run_policy_ablation,
            "threshold": run_threshold_ablation,
            "overhead": run_overhead_ablation,
            "placement": run_placement_ablation,
            "background": run_background_load_ablation,
        }
        results = runners[args.study](job_count=args.jobs, seed=args.seed)
        report = ablation_report(results, title=f"Ablation study: {args.study}")
    elif args.command == "run":
        policy = None if args.policy.lower() in ("none", "off") else args.policy
        config = ExperimentConfig(
            name="cli-run",
            workload=args.workload,
            job_count=args.jobs,
            malleability_policy=policy,
            approach=args.approach,
            placement_policy=args.placement,
            grow_threshold=args.threshold,
            seed=args.seed,
        )
        result = run_experiment(config)
        if args.csv:
            report = metrics_to_csv(result.metrics)
        else:
            report = summary_table(
                {result.label: result.metrics}, title=f"Run {result.label} (seed {args.seed})"
            )
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        sys.stdout.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
