"""Figure 8 — FPSMA versus EGS under the PWA approach (growing and shrinking).

The PWA experiments raise the load by reducing the inter-arrival time to 30
seconds (workloads W'm and W'mr).  The paper's observations that this
reproduction must match qualitatively:

* many jobs are stuck at (or near) their minimal size, more so with EGS;
* GADGET-2 execution times cluster around values roughly 30% higher than
  under PRA;
* the response time is clearly the worst for EGS on the all-malleable
  workload W'm because of the higher wait times in the overloaded system;
* beyond a certain time the malleability manager can no longer trigger
  changes other than initial placements (the cumulative-operations curve
  flattens).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.setup import ExperimentConfig, ExperimentResult
from repro.metrics.asciiplot import cdf_plot
from repro.metrics.collector import ExperimentMetrics
from repro.metrics.reports import cdf_probe_table, comparison_table, summary_table

#: The policy/workload combinations of Figure 8, in the paper's legend order.
FIGURE8_COMBINATIONS = (
    ("FPSMA", "W'm"),
    ("FPSMA", "W'mr"),
    ("EGS", "W'm"),
    ("EGS", "W'mr"),
)


def figure8_config(
    policy: str,
    workload: str,
    *,
    job_count: int = 300,
    seed: int = 0,
    grow_threshold: int = 0,
) -> ExperimentConfig:
    """Configuration of one Figure 8 run (PWA approach, high-load workloads).

    The PWA experiments use the heavier
    :data:`~repro.experiments.setup.FIGURE8_BACKGROUND_PROFILE` so that the
    system actually saturates, as it did during the paper's W' runs.
    """
    from repro.experiments.setup import FIGURE8_BACKGROUND_PROFILE

    return ExperimentConfig(
        name=f"figure8-{policy}-{workload}",
        workload=workload,
        job_count=job_count,
        malleability_policy=policy,
        approach="PWA",
        placement_policy="WF",
        seed=seed,
        grow_threshold=grow_threshold,
        background_fraction=dict(FIGURE8_BACKGROUND_PROFILE),
    )


def run_figure8(
    *,
    job_count: int = 300,
    seed: int = 0,
    combinations: Sequence[tuple] = FIGURE8_COMBINATIONS,
    grow_threshold: int = 0,
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """Run all Figure 8 combinations; returns results keyed by ``"policy/workload"``.

    A thin wrapper over the scenario engine: ``jobs`` fans the runs out over
    worker processes and ``cache`` (a directory or
    :class:`~repro.experiments.engine.ResultCache`) skips configurations that
    already ran.
    """
    from repro.experiments.scenarios import figure8_scenario, run_scenario, strip_seed_suffix

    results = run_scenario(
        figure8_scenario(combinations),
        job_count=job_count,
        seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        overrides={"grow_threshold": grow_threshold} if grow_threshold else None,
    )
    # One root seed => the bare "policy/workload" key is still unique.
    return {strip_seed_suffix(label): result for label, result in results.items()}


def _metrics(results: Dict[str, ExperimentResult]) -> Dict[str, ExperimentMetrics]:
    return {label: result.metrics for label, result in results.items()}


def figure8_report(results: Dict[str, ExperimentResult]) -> str:
    """Plain-text rendering of all six panels of Figure 8."""
    metrics = _metrics(results)
    sections = [summary_table(metrics, title="Figure 8 - summary (PWA approach)")]

    sections.append(
        cdf_probe_table(
            metrics,
            "average_allocation",
            probes=[2, 4, 6, 10, 15, 20, 30, 40],
            title="Figure 8(a) - % of jobs with average processors <= x",
        )
    )
    sections.append(
        cdf_probe_table(
            metrics,
            "maximum_allocation",
            probes=[2, 4, 8, 16, 24, 32, 46, 60],
            title="Figure 8(b) - % of jobs with maximum processors <= x",
        )
    )
    sections.append(
        cdf_probe_table(
            metrics,
            "execution_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1000],
            title="Figure 8(c) - % of jobs with execution time <= x seconds",
        )
    )
    sections.append(
        cdf_probe_table(
            metrics,
            "response_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1000],
            title="Figure 8(d) - % of jobs with response time <= x seconds",
        )
    )
    sections.append(
        cdf_plot(
            {label: m.average_allocation_cdf() for label, m in metrics.items()},
            title="Figure 8(a) as a plot - average-allocation CDFs",
            x_label="average number of processors per job",
        )
    )

    horizon = max((result.workload_duration for result in results.values()), default=0.0)
    window_end = max(horizon, 1.0)
    fractions = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)
    probes = [window_end * frac for frac in fractions]
    utilization = {
        label: [
            m.utilization_over(0.0, window_end, samples=200)[1][min(int(frac * 199), 199)]
            for frac in fractions
        ]
        for label, m in metrics.items()
    }
    sections.append(
        comparison_table(
            utilization,
            probes,
            title="Figure 8(e) - busy processors at selected times",
            probe_header="time (s)",
        )
    )
    operations = {}
    for label, m in metrics.items():
        times, counts = m.cumulative_operations()
        series = []
        for t in probes:
            if len(times) == 0 or (times <= t).sum() == 0:
                series.append(0.0)
            else:
                series.append(float(counts[(times <= t).sum() - 1]))
        operations[label] = series
    sections.append(
        comparison_table(
            operations,
            probes,
            title="Figure 8(f) - cumulative malleability operations at selected times",
            probe_header="time (s)",
        )
    )
    return "\n\n".join(sections)
