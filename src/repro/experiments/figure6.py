"""Figure 6 — execution times of FT and GADGET-2 versus the number of machines.

The paper measures both applications on the Delft cluster for increasing
numbers of machines: GADGET-2 takes 10 minutes on 2 processors and about 4
minutes at best; FT takes 2 minutes on 2 processors and about 1 minute at
best, and only runs on powers of two.

In this reproduction the curves come from the calibrated application
profiles; to make the check end-to-end, each point can also be *measured* by
actually executing the application model on a fixed allocation inside the
simulator (`measured=True`), which exercises the same runtime code paths the
scheduling experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.profiles import ApplicationProfile, ft_profile, gadget2_profile
from repro.apps.runtime import RunningApplication
from repro.metrics.reports import format_table
from repro.sim.core import Environment

#: Machine counts probed by the figure (the paper's x-axis spans 0-46).
DEFAULT_MACHINE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 46)


@dataclass
class ScalingPoint:
    """Execution time of one application at one machine count."""

    application: str
    machines: int
    execution_time: float


def simulate_execution_time(profile: ApplicationProfile, machines: int) -> float:
    """Execution time obtained by running the application model in the simulator."""
    env = Environment()
    size = profile.accepted_size(machines)
    if size < 1:
        raise ValueError(f"{profile.name} cannot run on {machines} machines")
    app = RunningApplication(env, profile, size, job_id=f"{profile.name}@{machines}")
    app.start()
    env.run(app.completed)
    return app.record.execution_time


def run_figure6(
    machine_counts: Sequence[int] = DEFAULT_MACHINE_COUNTS,
    *,
    measured: bool = False,
) -> List[ScalingPoint]:
    """Compute the Figure 6 scaling curves for both applications.

    With ``measured=True`` every point is obtained by executing the
    application model in the simulator (slower, exercises the runtime); with
    the default ``measured=False`` the profile's speedup model is evaluated
    directly.  Both must agree — a property test asserts it.
    """
    points: List[ScalingPoint] = []
    for profile in (ft_profile(), gadget2_profile()):
        for machines in machine_counts:
            usable = profile.accepted_size(machines)
            if usable < 1:
                continue
            if measured:
                time = simulate_execution_time(profile, machines)
            else:
                time = profile.execution_time(usable)
            points.append(
                ScalingPoint(application=profile.name, machines=machines, execution_time=time)
            )
    return points


def figure6_table(points: Optional[List[ScalingPoint]] = None) -> Dict[str, Dict[int, float]]:
    """The scaling curves as ``{application: {machines: execution time}}``."""
    points = points if points is not None else run_figure6()
    table: Dict[str, Dict[int, float]] = {}
    for point in points:
        table.setdefault(point.application, {})[point.machines] = point.execution_time
    return table


def figure6_report(points: Optional[List[ScalingPoint]] = None) -> str:
    """Plain-text rendering of Figure 6 (one row per machine count)."""
    table = figure6_table(points)
    machine_counts = sorted({m for curve in table.values() for m in curve})
    headers = ["machines"] + [f"{name} time (s)" for name in sorted(table)]
    rows = []
    for machines in machine_counts:
        row: List[object] = [machines]
        for name in sorted(table):
            row.append(table[name].get(machines, float("nan")))
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Figure 6 - execution time vs number of machines (FT and GADGET-2)",
    )
