"""Ablation studies on the design choices called out in DESIGN.md.

These go beyond the paper's evaluation and quantify the sensitivity of the
results to the knobs the paper mentions but does not sweep:

* the *approach* itself (PRA vs PWA on the same workload);
* the malleability policy, including the related-work baselines
  (equipartition, folding) the paper discusses;
* the free-processor *threshold* left to local users when growing;
* the grow/shrink *overhead* (GRAM submission latency and data
  redistribution cost);
* the *placement policy* interaction (WF vs CF vs CM/FCM);
* resilience to *background load* submitted behind KOALA's back.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.apps.profiles import ft_profile, gadget2_profile
from repro.apps.reconfiguration import ConstantReconfigurationCost
from repro.apps.profiles import ProfileRegistry
from repro.cluster.background import BackgroundLoadSpec
from repro.experiments.setup import ExperimentConfig, ExperimentResult, run_experiment
from repro.metrics.reports import summary_table


def run_approach_ablation(
    *, job_count: int = 60, seed: int = 0, workload: str = "W'm", policy: str = "EGS"
) -> Dict[str, ExperimentResult]:
    """PRA versus PWA on the same high-load workload and policy."""
    results: Dict[str, ExperimentResult] = {}
    for approach in ("PRA", "PWA"):
        config = ExperimentConfig(
            name=f"ablation-approach-{approach}",
            workload=workload,
            job_count=job_count,
            malleability_policy=policy,
            approach=approach,
            seed=seed,
        )
        results[f"{approach}/{policy}/{workload}"] = run_experiment(config)
    return results


def run_policy_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    approach: str = "PRA",
    policies: Sequence[Optional[str]] = ("FPSMA", "EGS", "EQUIPARTITION", "FOLDING", None),
) -> Dict[str, ExperimentResult]:
    """The paper's policies against the related-work baselines and no malleability."""
    results: Dict[str, ExperimentResult] = {}
    for policy in policies:
        config = ExperimentConfig(
            name=f"ablation-policy-{policy or 'none'}",
            workload=workload,
            job_count=job_count,
            malleability_policy=policy,
            approach=approach,
            seed=seed,
        )
        label = f"{policy or 'no-malleability'}/{workload}"
        results[label] = run_experiment(config)
    return results


def run_threshold_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    thresholds: Sequence[int] = (0, 4, 16, 32),
) -> Dict[str, ExperimentResult]:
    """Effect of the per-cluster idle threshold reserved for local users."""
    results: Dict[str, ExperimentResult] = {}
    for threshold in thresholds:
        config = ExperimentConfig(
            name=f"ablation-threshold-{threshold}",
            workload=workload,
            job_count=job_count,
            malleability_policy="EGS",
            approach="PRA",
            grow_threshold=threshold,
            seed=seed,
        )
        results[f"threshold={threshold}"] = run_experiment(config)
    return results


def run_overhead_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    submission_latencies: Sequence[float] = (0.0, 5.0, 30.0, 120.0),
) -> Dict[str, ExperimentResult]:
    """Effect of the GRAM grow/shrink overhead on job execution times.

    The paper stresses that this overhead is usually neglected; sweeping the
    GRAM submission latency shows when reconfiguration costs start eating the
    benefit of malleability.
    """
    results: Dict[str, ExperimentResult] = {}
    for latency in submission_latencies:
        config = ExperimentConfig(
            name=f"ablation-overhead-{latency:g}",
            workload=workload,
            job_count=job_count,
            malleability_policy="EGS",
            approach="PRA",
            gram_submission_latency=latency,
            seed=seed,
        )
        results[f"gram-latency={latency:g}s"] = run_experiment(config)
    return results


def run_reconfiguration_cost_ablation(
    *,
    job_count: int = 40,
    seed: int = 0,
    workload: str = "Wm",
    costs: Sequence[float] = (0.0, 5.0, 30.0, 90.0),
) -> Dict[str, ExperimentResult]:
    """Effect of the application-side data-redistribution pause."""
    results: Dict[str, ExperimentResult] = {}
    for cost in costs:
        registry = ProfileRegistry()
        registry.register(
            ft_profile(reconfiguration=ConstantReconfigurationCost(cost)), overwrite=True
        )
        registry.register(
            gadget2_profile(reconfiguration=ConstantReconfigurationCost(cost)), overwrite=True
        )
        config = ExperimentConfig(
            name=f"ablation-reconfig-{cost:g}",
            workload=workload,
            job_count=job_count,
            malleability_policy="EGS",
            approach="PRA",
            seed=seed,
        )
        # run_experiment builds jobs through the default registry; rebuild the
        # workload here with the modified profiles instead.
        from repro.experiments.setup import build_workload
        from repro.sim.rng import RandomStreams
        from repro.workloads.submission import WorkloadSubmitter
        from repro.experiments.setup import build_system
        from repro.metrics.collector import ExperimentMetrics
        from repro.sim.core import Environment

        streams = RandomStreams(seed=config.seed)
        env = Environment()
        workload_spec = build_workload(config, streams)
        multicluster, scheduler = build_system(config, env, streams)
        WorkloadSubmitter(env, scheduler, workload_spec, registry=registry)
        env.run(until=config.time_limit)
        metrics = ExperimentMetrics.from_run(scheduler, multicluster, label=config.label)
        results[f"reconfig-cost={cost:g}s"] = ExperimentResult(
            config=config,
            metrics=metrics,
            workload=workload_spec,
            simulated_time=env.now,
            all_done=scheduler.all_done,
        )
    return results


def run_placement_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    policies: Sequence[str] = ("WF", "CF", "CM", "FCM"),
) -> Dict[str, ExperimentResult]:
    """Interaction of malleability with the different placement policies."""
    results: Dict[str, ExperimentResult] = {}
    for placement in policies:
        config = ExperimentConfig(
            name=f"ablation-placement-{placement}",
            workload=workload,
            job_count=job_count,
            malleability_policy="EGS",
            approach="PRA",
            placement_policy=placement,
            seed=seed,
        )
        results[f"placement={placement}"] = run_experiment(config)
    return results


def run_background_load_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    interarrivals: Sequence[float] = (float("inf"), 300.0, 60.0),
) -> Dict[str, ExperimentResult]:
    """Resilience to background load submitted directly to the local RMs."""
    results: Dict[str, ExperimentResult] = {}
    for interarrival in interarrivals:
        if interarrival == float("inf"):
            background = {}
            label = "background=none"
        else:
            background = {
                name: BackgroundLoadSpec(
                    mean_interarrival=interarrival,
                    mean_duration=600.0,
                    min_processors=1,
                    max_processors=8,
                )
                for name in ("vu", "uva", "delft", "multimedian", "leiden")
            }
            label = f"background={interarrival:g}s"
        config = ExperimentConfig(
            name=f"ablation-background-{interarrival:g}",
            workload=workload,
            job_count=job_count,
            malleability_policy="EGS",
            approach="PRA",
            background=background,
            seed=seed,
        )
        results[label] = run_experiment(config)
    return results


def ablation_report(results: Dict[str, ExperimentResult], *, title: str) -> str:
    """Summary table of any ablation sweep."""
    return summary_table({label: r.metrics for label, r in results.items()}, title=title)
