"""Ablation studies on the design choices called out in DESIGN.md.

These go beyond the paper's evaluation and quantify the sensitivity of the
results to the knobs the paper mentions but does not sweep:

* the *approach* itself (PRA vs PWA on the same workload);
* the malleability policy, including the related-work baselines
  (equipartition, folding) the paper discusses;
* the free-processor *threshold* left to local users when growing;
* the grow/shrink *overhead* (GRAM submission latency and data
  redistribution cost);
* the *placement policy* interaction (WF vs CF vs CM/FCM);
* resilience to *background load* submitted behind KOALA's back.

Each study is declared as a :class:`~repro.experiments.scenarios.ScenarioSpec`
(see the factories in :mod:`repro.experiments.scenarios`) and executed by the
shared sweep engine; the ``run_*`` functions below are thin parameterised
wrappers kept for direct programmatic use.  All of them accept ``jobs=N`` to
fan the sweep out over worker processes and ``cache=...`` to reuse results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.setup import ExperimentResult
from repro.metrics.reports import summary_table


def _run(spec, *, job_count: int, seed: int, jobs: int, cache, refresh: bool):
    from repro.experiments.scenarios import run_scenario, strip_seed_suffix

    results = run_scenario(
        spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh
    )
    # One root seed => the bare variant label is still unique.
    return {strip_seed_suffix(label): result for label, result in results.items()}


def run_approach_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "W'm",
    policy: str = "EGS",
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """PRA versus PWA on the same high-load workload and policy."""
    from repro.experiments.scenarios import approach_ablation_scenario

    spec = approach_ablation_scenario(workload=workload, policy=policy)
    return _run(spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh)


def run_policy_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    approach: str = "PRA",
    policies: Sequence[Optional[str]] = ("FPSMA", "EGS", "EQUIPARTITION", "FOLDING", None),
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """The paper's policies against the related-work baselines and no malleability."""
    from repro.experiments.scenarios import policy_ablation_scenario

    spec = policy_ablation_scenario(workload=workload, approach=approach, policies=policies)
    return _run(spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh)


def run_threshold_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    thresholds: Sequence[int] = (0, 4, 16, 32),
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """Effect of the per-cluster idle threshold reserved for local users."""
    from repro.experiments.scenarios import threshold_ablation_scenario

    spec = threshold_ablation_scenario(workload=workload, thresholds=thresholds)
    return _run(spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh)


def run_overhead_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    submission_latencies: Sequence[float] = (0.0, 5.0, 30.0, 120.0),
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """Effect of the GRAM grow/shrink overhead on job execution times.

    The paper stresses that this overhead is usually neglected; sweeping the
    GRAM submission latency shows when reconfiguration costs start eating the
    benefit of malleability.
    """
    from repro.experiments.scenarios import overhead_ablation_scenario

    spec = overhead_ablation_scenario(
        workload=workload, submission_latencies=submission_latencies
    )
    return _run(spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh)


def run_reconfiguration_cost_ablation(
    *,
    job_count: int = 40,
    seed: int = 0,
    workload: str = "Wm",
    costs: Sequence[float] = (0.0, 5.0, 30.0, 90.0),
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """Effect of the application-side data-redistribution pause.

    The redistribution cost is an :class:`~repro.experiments.setup.ExperimentConfig`
    field (``reconfiguration_cost``), so this sweep runs through the standard
    engine like every other study — including caching and parallelism.
    """
    from repro.experiments.scenarios import reconfiguration_cost_ablation_scenario

    spec = reconfiguration_cost_ablation_scenario(workload=workload, costs=costs)
    return _run(spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh)


def run_placement_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    policies: Sequence[str] = ("WF", "CF", "CM", "FCM"),
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """Interaction of malleability with the different placement policies."""
    from repro.experiments.scenarios import placement_ablation_scenario

    spec = placement_ablation_scenario(workload=workload, policies=policies)
    return _run(spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh)


def run_background_load_ablation(
    *,
    job_count: int = 60,
    seed: int = 0,
    workload: str = "Wm",
    interarrivals: Sequence[float] = (float("inf"), 300.0, 60.0),
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """Resilience to background load submitted directly to the local RMs."""
    from repro.experiments.scenarios import background_load_ablation_scenario

    spec = background_load_ablation_scenario(workload=workload, interarrivals=interarrivals)
    return _run(spec, job_count=job_count, seed=seed, jobs=jobs, cache=cache, refresh=refresh)


def ablation_report(results: Dict[str, ExperimentResult], *, title: str) -> str:
    """Summary table of any ablation sweep."""
    return summary_table({label: r.metrics for label, r in results.items()}, title=title)
