"""Experiment drivers reproducing the paper's evaluation.

One module per figure of the evaluation section plus the ablation studies
promised in DESIGN.md:

* :mod:`repro.experiments.figure6` — the execution-time scaling curves of the
  two applications (Figure 6);
* :mod:`repro.experiments.figure7` — FPSMA vs EGS under the PRA approach on
  workloads Wm and Wmr (Figures 7(a)–7(f));
* :mod:`repro.experiments.figure8` — FPSMA vs EGS under the PWA approach on
  workloads W'm and W'mr (Figures 8(a)–8(f));
* :mod:`repro.experiments.ablations` — sensitivity studies on the
  design choices (threshold, reconfiguration overhead, placement policy,
  baseline policies);
* :mod:`repro.experiments.setup` — the shared experiment runner;
* :mod:`repro.experiments.cli` — the ``repro-experiment`` command-line tool.
"""

from repro.experiments.setup import (
    ExperimentConfig,
    ExperimentResult,
    build_workload,
    run_experiment,
)
from repro.experiments.figure6 import figure6_report, figure6_table, run_figure6
from repro.experiments.figure7 import figure7_report, run_figure7
from repro.experiments.figure8 import figure8_report, run_figure8

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "build_workload",
    "figure6_report",
    "figure6_table",
    "figure7_report",
    "figure8_report",
    "run_experiment",
    "run_figure6",
    "run_figure7",
    "run_figure8",
]
