"""Experiment layer: scenario registry, sweep engine and figure reports.

The layer is organised around three pieces:

* :mod:`repro.experiments.scenarios` — the declarative registry: every
  figure, table and ablation of the paper is a
  :class:`~repro.experiments.scenarios.ScenarioSpec` (base config, variants,
  seed grid, reporter);
* :mod:`repro.experiments.engine` — the sweep engine that expands specs into
  :class:`~repro.experiments.setup.ExperimentConfig` runs, fans them out over
  worker processes and caches results on disk keyed by config + code version;
* the per-figure modules — :mod:`~repro.experiments.figure6`,
  :mod:`~repro.experiments.figure7`, :mod:`~repro.experiments.figure8`,
  :mod:`~repro.experiments.table1` and :mod:`~repro.experiments.ablations` —
  which now only hold the report renderers and thin ``run_*`` wrappers; their
  former hand-rolled serial loops live (once) in the engine;
* :mod:`repro.experiments.setup` — the shared single-run machinery;
* :mod:`repro.experiments.cli` — the ``repro-cli`` command-line tool
  (``list-scenarios`` / ``run`` / ``sweep`` / ``custom``).
"""

from repro.experiments.engine import ResultCache, run_configs
from repro.experiments.scenarios import (
    ScenarioSpec,
    ScenarioVariant,
    get_scenario,
    policy_variants,
    register_scenario,
    run_scenario,
    scenario_names,
    scenario_report,
)
from repro.experiments.setup import (
    ExperimentConfig,
    ExperimentResult,
    build_workload,
    run_experiment,
)
from repro.experiments.figure6 import figure6_report, figure6_table, run_figure6
from repro.experiments.figure7 import figure7_report, run_figure7
from repro.experiments.figure8 import figure8_report, run_figure8
from repro.experiments.table1 import table1_report

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ResultCache",
    "ScenarioSpec",
    "ScenarioVariant",
    "build_workload",
    "figure6_report",
    "figure6_table",
    "figure7_report",
    "figure8_report",
    "get_scenario",
    "policy_variants",
    "register_scenario",
    "run_configs",
    "run_experiment",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_scenario",
    "scenario_names",
    "scenario_report",
    "table1_report",
]
