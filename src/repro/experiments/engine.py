"""Sweep engine: run many experiment configurations fast and only once.

The engine is the single execution path of the experiments layer.  Every
figure, table and ablation declares *what* to run (a
:class:`~repro.experiments.scenarios.ScenarioSpec`); this module decides
*how*: it fans the expanded configurations out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``jobs > 1``), consults an
on-disk result cache before paying for any simulation, and merges the
results back in the stable order the configurations were given in.

Caching
-------
A result is keyed by a SHA-256 hash of (a) the complete JSON representation
of its :class:`~repro.experiments.setup.ExperimentConfig` and (b) a *code
version* digest over every source file of the :mod:`repro` package.  Editing
any simulator source invalidates the whole cache; editing nothing makes a
re-run of an already-computed figure near-instant.  Only JSON travels
through the cache and across process boundaries, so cached, subprocess and
in-process results are exactly interchangeable (see
:meth:`repro.metrics.collector.ExperimentMetrics.to_dict`).
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import repro
from repro.experiments.setup import ExperimentConfig, ExperimentResult, run_experiment
from repro.metrics.collector import ExperimentMetrics

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_code_version_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """The result-cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-experiments``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-experiments"


def code_version() -> str:
    """Digest of every ``repro`` source file; changes whenever the code does.

    Memoised per process: the package sources do not change underneath a
    running sweep.
    """
    global _code_version_cache
    if _code_version_cache is None:
        digest = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def config_key(config: ExperimentConfig) -> str:
    """Content hash identifying one run: configuration plus code version."""
    payload = json.dumps(config.to_dict(), sort_keys=True, default=str)
    digest = hashlib.sha256()
    digest.update(payload.encode())
    digest.update(code_version().encode())
    return digest.hexdigest()


def result_to_record(result: ExperimentResult) -> Dict[str, Any]:
    """JSON-compatible record of one result (the cache/IPC wire format)."""
    return {
        "config": result.config.to_dict(),
        "metrics": result.metrics.to_dict(),
        "simulated_time": float(result.simulated_time),
        "all_done": bool(result.all_done),
        # Derived from all_done but spelled out so anyone reading a result
        # JSON sees immediately that the metrics are partial.
        "truncated": bool(result.truncated),
        "workload_duration": float(result.workload_duration),
        "events_processed": int(result.events_processed),
    }


def record_to_result(record: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_record` (the workload spec itself is not kept)."""
    return ExperimentResult(
        config=ExperimentConfig.from_dict(record["config"]),
        metrics=ExperimentMetrics.from_dict(record["metrics"]),
        workload=None,
        simulated_time=float(record["simulated_time"]),
        all_done=bool(record["all_done"]),
        workload_duration=float(record["workload_duration"]),
        # Absent in records written before the benchmark subsystem existed.
        events_processed=int(record.get("events_processed", 0)),
    )


class ResultCache:
    """On-disk cache of experiment results over the service's content store.

    A thin experiment-typed wrapper around
    :class:`repro.service.store.ResultStore`: this class maps configurations
    to content keys and results to wire records, the store provides the
    durable layer — atomic writes, cross-process file locking, a
    ``schema_version`` field with graceful invalidation (old or corrupt
    records are misses, never errors) and optional LRU size bounding.  The
    experiment daemon shares the same store class, so cached, daemon,
    serial and parallel results stay byte-identical.
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        *,
        budget_bytes: Union[str, int, None] = None,
    ) -> None:
        from repro.service.store import ResultStore

        self.backend = ResultStore(
            Path(directory) if directory is not None else default_cache_dir(),
            budget_bytes=budget_bytes,
        )

    @property
    def directory(self) -> Path:
        """The store directory (for messages and tooling)."""
        return self.backend.directory

    def path_for(self, config: ExperimentConfig) -> Path:
        """The cache file a result for *config* lives in (existing or not)."""
        return self.backend.path_for(config_key(config))

    def load(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The cached result for *config*, or ``None`` on a miss.

        Unreadable, truncated or schema-incompatible cache files count as
        misses: the cache is an accelerator, never a source of errors.
        """
        record = self.backend.get(config_key(config))
        if record is None:
            return None
        try:
            return record_to_result(record)
        except (KeyError, TypeError, ValueError):
            # A structurally valid envelope whose record does not round-trip
            # (e.g. hand-edited): same policy as corruption — a miss.
            return None

    def store(self, result: ExperimentResult) -> Path:
        """Persist *result*; returns the cache file written."""
        return self.backend.put(config_key(result.config), result_to_record(result))

    def clear(self) -> int:
        """Delete every cached result; returns the number of files removed."""
        return self.backend.clear()


def _execute_record(config_data: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one configuration, return its JSON record.

    Takes and returns plain dicts so nothing fancier than JSON-shaped data
    ever crosses the process boundary.
    """
    config = ExperimentConfig.from_dict(config_data)
    return result_to_record(run_experiment(config))


def run_configs(
    configs: Sequence[ExperimentConfig],
    *,
    jobs: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    refresh: bool = False,
) -> List[ExperimentResult]:
    """Run *configs*, in parallel and against the cache, in stable order.

    Parameters
    ----------
    configs:
        The configurations to run.  The returned list matches this order
        exactly, regardless of which runs were cached or which subprocess
        finished first.
    jobs:
        Number of worker processes.  ``1`` (the default) runs everything in
        this process; higher values fan the cache misses out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.  Seeds live in the
        configurations themselves, so the schedule of workers cannot change
        any result.
    cache:
        A :class:`ResultCache`, a directory for one, or ``None`` to run
        without caching.
    refresh:
        Ignore cached entries (but still store fresh results).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    store = cache if isinstance(cache, ResultCache) or cache is None else ResultCache(cache)

    # Process-global engine counters (see ``repro.obs.metrics``): how many
    # configurations this process ran versus served from cache.  The store's
    # own registry counts file-level hits/misses per store instance.
    from repro.obs.metrics import get_registry

    registry = get_registry()
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    misses: List[int] = []
    for index, config in enumerate(configs):
        cached = store.load(config) if store is not None and not refresh else None
        if cached is not None:
            registry.counter("engine.cache.hits").inc()
            results[index] = cached
        else:
            registry.counter("engine.cache.misses").inc()
            misses.append(index)
    registry.counter("engine.configs").inc(len(configs))
    registry.counter("engine.runs.executed").inc(len(misses))

    if misses and jobs > 1:
        worker_count = min(jobs, len(misses))
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            records = pool.map(
                _execute_record, [configs[index].to_dict() for index in misses]
            )
            for index, record in zip(misses, records):
                results[index] = record_to_result(record)
    else:
        for index in misses:
            results[index] = run_experiment(configs[index])

    if store is not None:
        for index in misses:
            store.store(results[index])
    return [result for result in results if result is not None]
