"""Declarative scenario registry for the experiments layer.

A :class:`ScenarioSpec` describes one of the paper's figures, tables or
ablation sweeps as *data*: a base :class:`~repro.experiments.setup.ExperimentConfig`
field mapping, a tuple of :class:`ScenarioVariant`\\ s (the legend entries),
a seed grid and a repetition count, plus the reporter that renders the merged
results.  The :mod:`~repro.experiments.engine` turns a spec into concrete
configurations and runs them — in parallel, against the result cache —
without any per-figure driver code.

Adding a scenario is one registry entry::

    register_scenario(ScenarioSpec(
        name="my-sweep",
        title="My sweep",
        base={"approach": "PRA", "placement_policy": "WF"},
        variants=tuple(
            ScenarioVariant(f"EGS/{w}", {"malleability_policy": "EGS", "workload": w})
            for w in ("Wm", "Wmr")
        ),
        reporter=my_report,
    ))

after which ``repro-cli run my-sweep --jobs 4`` just works.

Static scenarios (Figure 6's scaling curves, Table I) do not sweep
``run_experiment`` at all; they provide a ``builder`` that renders the
report directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.engine import ResultCache, run_configs
from repro.experiments.setup import ExperimentConfig, ExperimentResult

#: Signature of a sweep reporter: merged results keyed by variant label -> text.
Reporter = Callable[[Dict[str, ExperimentResult]], str]


@dataclass(frozen=True)
class ScenarioVariant:
    """One legend entry of a scenario: a label and its config overrides."""

    label: str
    overrides: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one figure/table/ablation run.

    Attributes
    ----------
    name:
        Registry key (``repro-cli run <name>``).
    title:
        Human-readable one-liner shown by ``list-scenarios``.
    base:
        :class:`~repro.experiments.setup.ExperimentConfig` fields shared by
        every variant.
    variants:
        The legend entries; each contributes ``len(seeds) * repetitions``
        runs.
    seeds:
        Root seeds to run every variant with.
    repetitions:
        Independent repetitions per seed; repetition *r* of root seed *s*
        runs with ``s * repetitions + r``, which is deterministic and
        collision-free across the whole grid (distinct root seeds can never
        share a run seed).  With the default ``repetitions=1`` the root seed
        passes through unchanged.
    default_job_count:
        Jobs per workload when the caller does not override it.
    reporter:
        Renders the merged results into the figure's plain-text report.
    builder:
        For static scenarios only: renders the report directly, no sweep.
    bench:
        Optional custom benchmark hook: ``bench(job_count=..., seed=...)``
        returning at least ``runs``, ``wall_clock_seconds``,
        ``events_processed`` and ``metrics_digest``.  When set,
        ``repro-bench`` measures the hook instead of sweeping the config
        grid — used by scenarios whose interesting execution path is not
        :func:`~repro.experiments.setup.run_experiment` (the sharded-replay
        engine).  The scenario stays a normal sweep for ``repro-cli run``.
    """

    name: str
    title: str
    base: Mapping[str, Any] = field(default_factory=dict)
    variants: Tuple[ScenarioVariant, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    repetitions: int = 1
    default_job_count: int = 300
    reporter: Optional[Reporter] = None
    builder: Optional[Callable[[], str]] = None
    bench: Optional[Callable[..., Dict[str, Any]]] = None

    @property
    def is_static(self) -> bool:
        """Whether this scenario renders a report without sweeping configs."""
        return self.builder is not None

    def run_count(self) -> int:
        """Number of experiment runs a full sweep of this scenario performs."""
        return len(self.variants) * len(self.seeds) * self.repetitions

    def expand(
        self,
        *,
        job_count: Optional[int] = None,
        seed: Optional[int] = None,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> List[Tuple[str, ExperimentConfig]]:
        """The concrete ``(label, config)`` runs of this scenario, in order.

        *seed* replaces the spec's whole seed grid with a single root seed;
        *overrides* wins over both the base mapping and the variants.  Labels
        stay bare for single-seed/single-repetition sweeps and grow
        ``@seed<N>`` / ``#rep<N>`` suffixes only when needed, so the common
        case keys results exactly like the paper's legends
        (``"FPSMA/Wm"``).

        "When needed" includes a *seed* override that changes the grid: two
        runs of the same scenario with different ``--seed`` values must not
        produce colliding bare labels that overwrite each other in merged
        reports, so the suffix appears whenever the effective seed grid
        differs from the spec's own (only ``seed == the spec's sole default``
        stays bare).
        """
        if self.is_static:
            raise ValueError(f"scenario {self.name!r} is static and has no config grid")
        seeds = (int(seed),) if seed is not None else self.seeds
        label_seeds = len(seeds) > 1 or (seed is not None and seeds != self.seeds)
        pairs: List[Tuple[str, ExperimentConfig]] = []
        for variant in self.variants:
            for root_seed in seeds:
                for repetition in range(self.repetitions):
                    fields: Dict[str, Any] = dict(self.base)
                    fields.update(variant.overrides)
                    if overrides:
                        fields.update(overrides)
                    if job_count is not None:
                        fields["job_count"] = int(job_count)
                    else:
                        fields.setdefault("job_count", self.default_job_count)
                    fields["seed"] = root_seed * self.repetitions + repetition
                    fields.setdefault(
                        "name", f"{self.name}-{_slug(variant.label)}"
                    )
                    label = variant.label
                    if label_seeds:
                        label += f"@seed{root_seed}"
                    if self.repetitions > 1:
                        label += f"#rep{repetition}"
                    # The validated builder: a typo'd override key (from a
                    # variant, the base mapping or a caller's --set flag)
                    # fails with the valid fields listed, not a TypeError.
                    pairs.append(
                        (label, ExperimentConfig().with_overrides(**fields))
                    )
        return pairs


_SEED_SUFFIX = re.compile(r"@seed\d+")


def strip_seed_suffix(label: str) -> str:
    """*label* without its ``@seed<N>`` suffix (``#rep<N>`` is kept).

    For callers that collapse a scenario to a single root seed — the figure
    and ablation wrappers — the seed suffix carries no information and the
    bare variant label is still unique, so they re-key their results with
    this to keep the documented ``"policy/workload"`` keys.
    """
    return _SEED_SUFFIX.sub("", label)


def _slug(label: str) -> str:
    """Config-name-safe version of a variant label."""
    for old, new in (
        ("/", "-"), ("'", "p"), ("=", "-"), (" ", ""), ("?", "-"), ("&", "-"),
        ('"', "p"),
    ):
        label = label.replace(old, new)
    return label


def policy_variants(
    field_name: str, refs: Sequence[Optional[str]], *, scenario: str
) -> Tuple[ScenarioVariant, ...]:
    """Variants sweeping one policy *field* over policy references.

    Each reference may be a bare registered name (``"EGS"``) or a
    parameterised form (``"EASY?reserve_depth=2"``), so a single scenario can
    sweep over policy *parameters*, not just policy names.  ``None`` means
    "disabled" (only meaningful for ``malleability_policy``).
    """
    return tuple(
        ScenarioVariant(
            str(ref) if ref is not None else "none",
            {
                field_name: ref,
                "name": f"{scenario}-{_slug(str(ref) if ref is not None else 'none')}",
            },
        )
        for ref in refs
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, overwrite: bool = False) -> ScenarioSpec:
    """Add *spec* to the registry (and return it)."""
    if not overwrite and spec.name in _SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """The registered scenario called *name*."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def iter_scenarios() -> Iterable[ScenarioSpec]:
    """The registered scenarios, sorted by name."""
    return (_SCENARIOS[name] for name in scenario_names())


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    *,
    job_count: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    refresh: bool = False,
    overrides: Optional[Mapping[str, Any]] = None,
) -> Dict[str, ExperimentResult]:
    """Run every configuration of *scenario* and merge the results.

    The heavy lifting — parallel fan-out over ``jobs`` worker processes,
    cache lookups and stable-order merging — happens in
    :func:`repro.experiments.engine.run_configs`.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    pairs = spec.expand(job_count=job_count, seed=seed, overrides=overrides)
    results = run_configs(
        [config for _, config in pairs], jobs=jobs, cache=cache, refresh=refresh
    )
    return {label: result for (label, _), result in zip(pairs, results)}


def scenario_report(
    scenario: Union[str, ScenarioSpec],
    results: Optional[Dict[str, ExperimentResult]] = None,
    **run_kwargs: Any,
) -> str:
    """The plain-text report of *scenario* (running it first if needed)."""
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if spec.is_static:
        assert spec.builder is not None
        return spec.builder()
    if results is None:
        results = run_scenario(spec, **run_kwargs)
    if spec.reporter is None:
        from repro.metrics.reports import summary_table

        return summary_table(
            {label: r.metrics for label, r in results.items()}, title=spec.title
        )
    return spec.reporter(results)


# ---------------------------------------------------------------------------
# Spec factories: the paper's figures and the ablation sweeps as data
# ---------------------------------------------------------------------------


def _policy_workload_variants(
    combinations: Sequence[Tuple[str, str]], name: str
) -> Tuple[ScenarioVariant, ...]:
    return tuple(
        ScenarioVariant(
            f"{policy}/{workload}",
            {
                "malleability_policy": policy,
                "workload": workload,
                "name": f"{name}-{policy}-{workload}",
            },
        )
        for policy, workload in combinations
    )


def figure7_scenario(
    combinations: Optional[Sequence[Tuple[str, str]]] = None,
) -> ScenarioSpec:
    """Figure 7: {FPSMA, EGS} x {Wm, Wmr} under PRA with Worst-Fit placement."""
    from repro.experiments.figure7 import FIGURE7_COMBINATIONS, figure7_report

    return ScenarioSpec(
        name="figure7",
        title="Figure 7 - FPSMA vs EGS under PRA on Wm/Wmr (6 panels)",
        base={"approach": "PRA", "placement_policy": "WF"},
        variants=_policy_workload_variants(
            combinations if combinations is not None else FIGURE7_COMBINATIONS,
            "figure7",
        ),
        reporter=figure7_report,
    )


def figure8_scenario(
    combinations: Optional[Sequence[Tuple[str, str]]] = None,
) -> ScenarioSpec:
    """Figure 8: {FPSMA, EGS} x {W'm, W'mr} under PWA in a saturated system."""
    from repro.experiments.figure8 import FIGURE8_COMBINATIONS, figure8_report
    from repro.experiments.setup import FIGURE8_BACKGROUND_PROFILE

    return ScenarioSpec(
        name="figure8",
        title="Figure 8 - FPSMA vs EGS under PWA on W'm/W'mr (6 panels)",
        base={
            "approach": "PWA",
            "placement_policy": "WF",
            "background_fraction": dict(FIGURE8_BACKGROUND_PROFILE),
        },
        variants=_policy_workload_variants(
            combinations if combinations is not None else FIGURE8_COMBINATIONS,
            "figure8",
        ),
        reporter=figure8_report,
    )


def figure6_scenario() -> ScenarioSpec:
    """Figure 6: the applications' execution-time scaling curves (static)."""
    from repro.experiments.figure6 import figure6_report, run_figure6

    return ScenarioSpec(
        name="figure6",
        title="Figure 6 - execution time vs machines for FT and GADGET-2",
        builder=lambda: figure6_report(run_figure6()),
    )


def table1_scenario() -> ScenarioSpec:
    """Table I: the DAS-3 cluster layout the experiments run on (static)."""
    from repro.experiments.table1 import table1_report

    return ScenarioSpec(
        name="table1",
        title="Table I - distribution of the nodes over the DAS-3 clusters",
        builder=table1_report,
    )


def _ablation_spec(
    study: str,
    title: str,
    variants: Iterable[ScenarioVariant],
    base: Optional[Mapping[str, Any]] = None,
    *,
    default_job_count: int = 60,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"ablation-{study}",
        title=title,
        base=dict(base or {}),
        variants=tuple(variants),
        default_job_count=default_job_count,
        reporter=partial(_ablation_results_report, title=f"Ablation study: {study}"),
    )


def _ablation_results_report(results: Dict[str, ExperimentResult], *, title: str) -> str:
    from repro.experiments.ablations import ablation_report

    return ablation_report(results, title=title)


def approach_ablation_scenario(
    *, workload: str = "W'm", policy: str = "EGS", approaches: Sequence[str] = ("PRA", "PWA")
) -> ScenarioSpec:
    """PRA versus PWA on the same high-load workload and policy."""
    return _ablation_spec(
        "approach",
        "Ablation - PRA vs PWA on one workload/policy",
        (
            ScenarioVariant(
                f"{approach}/{policy}/{workload}",
                {"approach": approach, "name": f"ablation-approach-{approach}"},
            )
            for approach in approaches
        ),
        base={"workload": workload, "malleability_policy": policy},
    )


def policy_ablation_scenario(
    *,
    workload: str = "Wm",
    approach: str = "PRA",
    policies: Sequence[Optional[str]] = ("FPSMA", "EGS", "EQUIPARTITION", "FOLDING", None),
) -> ScenarioSpec:
    """The paper's policies against related-work baselines and no malleability."""
    return _ablation_spec(
        "policy",
        "Ablation - malleability policies incl. baselines",
        (
            ScenarioVariant(
                f"{policy or 'no-malleability'}/{workload}",
                {
                    "malleability_policy": policy,
                    "name": f"ablation-policy-{policy or 'none'}",
                },
            )
            for policy in policies
        ),
        base={"workload": workload, "approach": approach},
    )


def threshold_ablation_scenario(
    *, workload: str = "Wm", thresholds: Sequence[int] = (0, 4, 16, 32)
) -> ScenarioSpec:
    """Effect of the per-cluster idle threshold reserved for local users."""
    return _ablation_spec(
        "threshold",
        "Ablation - idle-processor threshold left to local users",
        (
            ScenarioVariant(
                f"threshold={threshold}",
                {"grow_threshold": threshold, "name": f"ablation-threshold-{threshold}"},
            )
            for threshold in thresholds
        ),
        base={"workload": workload, "malleability_policy": "EGS", "approach": "PRA"},
    )


def overhead_ablation_scenario(
    *, workload: str = "Wm", submission_latencies: Sequence[float] = (0.0, 5.0, 30.0, 120.0)
) -> ScenarioSpec:
    """Effect of the GRAM grow/shrink overhead on job execution times."""
    return _ablation_spec(
        "overhead",
        "Ablation - GRAM submission latency (grow/shrink overhead)",
        (
            ScenarioVariant(
                f"gram-latency={latency:g}s",
                {
                    "gram_submission_latency": latency,
                    "name": f"ablation-overhead-{latency:g}",
                },
            )
            for latency in submission_latencies
        ),
        base={"workload": workload, "malleability_policy": "EGS", "approach": "PRA"},
    )


def reconfiguration_cost_ablation_scenario(
    *, workload: str = "Wm", costs: Sequence[float] = (0.0, 5.0, 30.0, 90.0)
) -> ScenarioSpec:
    """Effect of the application-side data-redistribution pause."""
    return _ablation_spec(
        "reconfiguration",
        "Ablation - application data-redistribution cost",
        (
            ScenarioVariant(
                f"reconfig-cost={cost:g}s",
                {
                    "reconfiguration_cost": cost,
                    "name": f"ablation-reconfig-{cost:g}",
                },
            )
            for cost in costs
        ),
        base={"workload": workload, "malleability_policy": "EGS", "approach": "PRA"},
        default_job_count=40,
    )


def placement_ablation_scenario(
    *, workload: str = "Wm", policies: Sequence[str] = ("WF", "CF", "CM", "FCM")
) -> ScenarioSpec:
    """Interaction of malleability with the different placement policies."""
    return _ablation_spec(
        "placement",
        "Ablation - placement policies (WF/CF/CM/FCM)",
        (
            ScenarioVariant(
                f"placement={placement}",
                {
                    "placement_policy": placement,
                    "name": f"ablation-placement-{placement}",
                },
            )
            for placement in policies
        ),
        base={"workload": workload, "malleability_policy": "EGS", "approach": "PRA"},
    )


def backfilling_scenario(
    *,
    workload: str = "Wm",
    placements: Sequence[str] = ("WF", "EASY", "EASY?reserve_depth=2"),
) -> ScenarioSpec:
    """The new FCFS+EASY-backfilling placement policy against Worst-Fit.

    Sweeps the ``placement_policy`` axis over Worst-Fit and the EASY policy
    at two reservation depths — a policy-*parameter* sweep expressed directly
    in the scenario registry.
    """
    return ScenarioSpec(
        name="backfilling",
        title="New policy - FCFS+EASY backfilling placement vs Worst-Fit",
        base={"workload": workload, "malleability_policy": "EGS", "approach": "PRA"},
        variants=policy_variants(
            "placement_policy", placements, scenario="backfilling"
        ),
        default_job_count=60,
    )


def average_steal_scenario(
    *,
    workload: str = "Wm",
    policies: Sequence[str] = (
        "FPSMA",
        "EGS",
        "AVERAGE_STEAL",
        "AVERAGE_STEAL?balance='absolute'",
    ),
) -> ScenarioSpec:
    """The new average-steal fair-share policy against the paper's policies.

    Includes both ``balance`` modes of the new policy, demonstrating that
    scenario sweeps cover parameterised policies end-to-end (construction,
    labels and result-cache keys all flow through the canonical spec string).
    """
    return ScenarioSpec(
        name="average-steal",
        title="New policy - ElastiSim-style average-steal malleability policy",
        base={"workload": workload, "approach": "PRA"},
        variants=policy_variants(
            "malleability_policy", policies, scenario="average-steal"
        ),
        default_job_count=60,
    )


def trace_replay_scenario(
    *,
    trace: str = "das3-synthetic",
    policies: Sequence[Optional[str]] = ("FPSMA", "EGS", None),
) -> ScenarioSpec:
    """Replay a named trace under the paper's malleability policies.

    The workload axis is a ``trace:`` reference resolved by the workload
    registry, so the same sweep/cache/CLI machinery that runs the synthetic
    paper workloads replays archive-style traces: the bundled deterministic
    DAS-3-style synthetic trace by default, or any ``.swf`` file in
    ``traces/`` / ``$REPRO_TRACES_DIR`` by name.
    """
    return ScenarioSpec(
        name="trace-replay",
        title="Trace replay - malleability policies on an SWF trace",
        base={
            "workload": f"trace:{trace}",
            "approach": "PRA",
            "placement_policy": "WF",
        },
        variants=tuple(
            ScenarioVariant(
                f"{policy or 'no-malleability'}/{trace}",
                {
                    "malleability_policy": policy,
                    "name": f"trace-replay-{_slug(policy or 'none')}",
                },
            )
            for policy in policies
        ),
        default_job_count=60,
    )


def trace_load_sweep_scenario(
    *,
    trace: str = "das3-synthetic",
    load_factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    policy: str = "EGS",
) -> ScenarioSpec:
    """Sweep the load factor of a trace's arrival process under one policy.

    Each variant replays the *same* trace with its inter-arrival gaps rescaled
    (factor 2 = double load), the trace counterpart of the paper deriving
    W'm from Wm by compressing arrivals.
    """
    return ScenarioSpec(
        name="trace-load-sweep",
        title="Trace replay - load-factor sweep of an SWF trace's arrivals",
        base={
            "malleability_policy": policy,
            "approach": "PRA",
            "placement_policy": "WF",
        },
        variants=tuple(
            ScenarioVariant(
                f"load={factor:g}x/{trace}",
                {
                    "workload": f"trace:{trace}?load_factor={factor:g}",
                    "name": f"trace-load-{factor:g}",
                },
            )
            for factor in load_factors
        ),
        default_job_count=60,
    )


def fault_sweep_scenario(
    *,
    workload: str = "Wmr",
    mtbfs: Sequence[float] = (43200.0, 10800.0),
    mttr: float = 900.0,
    policies: Sequence[Optional[str]] = ("FPSMA", "EGS", None),
) -> ScenarioSpec:
    """MTBF sweep x policy grid under exponential per-node churn.

    Every variant replays the same mixed malleable/rigid workload (Wmr by
    default) while nodes fail and return with the given per-node MTBF/MTTR;
    the resilience metrics then show malleable jobs shrinking through
    failures that kill their rigid peers, and how the gap widens as the
    machine gets flakier.
    """
    return ScenarioSpec(
        name="fault-sweep",
        title="Faults - MTBF sweep x malleability policies under node churn",
        base={
            "workload": workload,
            "approach": "PRA",
            "placement_policy": "WF",
        },
        variants=tuple(
            ScenarioVariant(
                f"{policy or 'no-malleability'}/mtbf={mtbf:g}",
                {
                    "malleability_policy": policy,
                    "fault_model": f"fault:exp?mtbf={mtbf:g}&mttr={mttr:g}",
                    "name": f"fault-sweep-{_slug(policy or 'none')}-{mtbf:g}",
                },
            )
            for policy in policies
            for mtbf in mtbfs
        ),
        default_job_count=40,
    )


def churn_replay_scenario(
    *,
    trace: str = "das3-synthetic",
    fault: str = "fault:exp?mtbf=21600&mttr=900",
    policy: str = "EGS",
) -> ScenarioSpec:
    """Replay one trace under churn, all-malleable versus all-rigid.

    The sharpest resilience comparison possible: the *same* job stream with
    the *same* failure sequence, where the only difference is whether jobs
    are malleable.  The malleable variant shows shrink-rescues where the
    rigid variant shows kills and resubmissions.
    """
    return ScenarioSpec(
        name="churn-replay",
        title="Faults - trace replay under churn, malleable vs rigid jobs",
        base={
            "approach": "PRA",
            "placement_policy": "WF",
            "malleability_policy": policy,
            "fault_model": fault,
        },
        variants=(
            ScenarioVariant(
                f"malleable/{trace}",
                {
                    "workload": f"trace:{trace}?malleable=1&max_procs=32",
                    "name": "churn-replay-malleable",
                },
            ),
            ScenarioVariant(
                f"rigid/{trace}",
                {
                    "workload": f"trace:{trace}?malleable=0&max_procs=32",
                    "name": "churn-replay-rigid",
                },
            ),
        ),
        default_job_count=40,
    )


def background_load_ablation_scenario(
    *, workload: str = "Wm", interarrivals: Sequence[float] = (float("inf"), 300.0, 60.0)
) -> ScenarioSpec:
    """Resilience to background load submitted directly to the local RMs."""
    from repro.cluster.background import BackgroundLoadSpec

    def variant(interarrival: float) -> ScenarioVariant:
        if interarrival == float("inf"):
            return ScenarioVariant(
                "background=none",
                {"background": {}, "name": "ablation-background-inf"},
            )
        background = {
            name: BackgroundLoadSpec(
                mean_interarrival=interarrival,
                mean_duration=600.0,
                min_processors=1,
                max_processors=8,
            )
            for name in ("vu", "uva", "delft", "multimedian", "leiden")
        }
        return ScenarioVariant(
            f"background={interarrival:g}s",
            {"background": background, "name": f"ablation-background-{interarrival:g}"},
        )

    return _ablation_spec(
        "background",
        "Ablation - resilience to load bypassing KOALA",
        (variant(interarrival) for interarrival in interarrivals),
        base={"workload": workload, "malleability_policy": "EGS", "approach": "PRA"},
    )


def _tournament_results_report(results: Dict[str, ExperimentResult]) -> str:
    """Reporter hook of the tournament scenario (lazy: no stats import here)."""
    from repro.stats.tournament import tournament_report_from_results

    return tournament_report_from_results(results, title="tournament")


def tournament_scenario(
    *,
    policies: Sequence[Optional[str]] = ("FPSMA", "EGS"),
    trace: str = "das3-synthetic",
    load_factors: Sequence[float] = (1.0, 2.0),
    fault_models: Sequence[Optional[str]] = (None, "fault:exp?mtbf=21600&mttr=900"),
    seeds: Sequence[int] = (0, 1, 2),
    default_job_count: int = 20,
    name: str = "tournament",
) -> ScenarioSpec:
    """A policy × trace × load_factor × fault_model tournament grid.

    Every cell of the cross product replays the *same* trace — rescaled per
    load factor, struck (or not) by the fault model — under one malleability
    policy, across the whole seed grid.  The reporter aggregates the
    replicas into means and bootstrap confidence intervals and ranks the
    entrants (see :mod:`repro.stats.tournament`); the statistics layer can
    also replicate the spec directly via ``repro-cli tournament``.

    The variants are plain data on purpose: building the grid must not pull
    the statistics layer in at import time (only the reporter does, lazily),
    which keeps the registry import-cycle-free.
    """

    def fault_tag(fault: Optional[str]) -> str:
        return "no-faults" if fault is None else fault.split(":", 1)[-1]

    return ScenarioSpec(
        name=name,
        title="Tournament - policy x load x faults grid with multi-seed CIs",
        base={"approach": "PRA", "placement_policy": "WF"},
        variants=tuple(
            ScenarioVariant(
                f"{policy or 'no-malleability'}/load={factor:g}x/{fault_tag(fault)}",
                {
                    "malleability_policy": policy,
                    "workload": f"trace:{trace}?load_factor={factor:g}",
                    "fault_model": fault,
                    "name": (
                        f"{name}-{_slug(policy or 'none')}-{factor:g}"
                        f"-{_slug(fault_tag(fault))}"
                    ),
                },
            )
            for policy in policies
            for factor in load_factors
            for fault in fault_models
        ),
        seeds=tuple(int(seed) for seed in seeds),
        default_job_count=default_job_count,
        reporter=_tournament_results_report,
    )


def _shard_replay_bench(**kwargs) -> Dict[str, Any]:
    """Lazy import so the scenario registry never pulls in the shard engine."""
    from repro.checkpoint.shard import shard_replay_bench

    return shard_replay_bench(**kwargs)


def _shard_replay_report(results: Dict[str, ExperimentResult]) -> str:
    lines = ["Sharded replay - deterministic bursty rigid workload", ""]
    for label in sorted(results):
        metrics = results[label].metrics
        lines.append(f"{label}: {metrics.job_count()} jobs finished")
    return "\n".join(lines)


def shard_replay_scenario() -> ScenarioSpec:
    """The sharded-replay regime: huge deterministic bursts, rigid jobs only.

    The base mirrors :func:`repro.checkpoint.shard.shard_bench_config`
    field-for-field (a test pins the equality), so ``repro-cli run
    shard-replay --jobs 2000`` simulates exactly the configuration that
    ``repro-bench shard-replay`` measures through the shard engine.
    """
    return ScenarioSpec(
        name="shard-replay",
        title="Sharded million-job replay (checkpoint subsystem bench)",
        base={
            "name": "shard-replay",
            "workload": "shard-bursts",
            "malleability_policy": None,
            "approach": "PRA",
            "placement_policy": "WF",
            "gram_latency_jitter": 0.0,
            "background_fraction": 0.0,
            "time_limit": 4.0e9,
        },
        variants=(ScenarioVariant("shard-bursts/rigid"),),
        default_job_count=500_000,
        reporter=_shard_replay_report,
        bench=_shard_replay_bench,
    )


# Register the paper's scenarios.  Each entry is the single source of truth
# for what ``repro-cli run <name>`` executes.
for _factory in (
    figure6_scenario,
    figure7_scenario,
    figure8_scenario,
    table1_scenario,
    approach_ablation_scenario,
    policy_ablation_scenario,
    threshold_ablation_scenario,
    overhead_ablation_scenario,
    reconfiguration_cost_ablation_scenario,
    placement_ablation_scenario,
    background_load_ablation_scenario,
    backfilling_scenario,
    average_steal_scenario,
    trace_replay_scenario,
    trace_load_sweep_scenario,
    fault_sweep_scenario,
    churn_replay_scenario,
    shard_replay_scenario,
    tournament_scenario,
):
    register_scenario(_factory())
