"""Figure 7 — FPSMA versus EGS under the PRA approach (no shrinking).

The paper runs the four combinations {FPSMA, EGS} x {Wm, Wmr} with the
Worst-Fit placement policy and reports six panels:

(a) CDF of the per-job time-averaged processor count,
(b) CDF of the per-job maximum processor count,
(c) CDF of the execution times,
(d) CDF of the response times,
(e) utilization (busy processors) over time,
(f) cumulative number of grow messages over time.

The qualitative findings this reproduction must match: EGS gives jobs larger
average and maximum sizes than FPSMA; the all-malleable workload Wm achieves
shorter execution/response times and higher utilization than the mixed
workload Wmr; and the number of grow messages is much higher for EGS and for
Wm.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.setup import ExperimentConfig, ExperimentResult
from repro.metrics.asciiplot import cdf_plot
from repro.metrics.collector import ExperimentMetrics
from repro.metrics.reports import cdf_probe_table, comparison_table, summary_table

#: The policy/workload combinations of Figure 7, in the paper's legend order.
FIGURE7_COMBINATIONS = (
    ("FPSMA", "Wm"),
    ("FPSMA", "Wmr"),
    ("EGS", "Wm"),
    ("EGS", "Wmr"),
)


def figure7_config(
    policy: str,
    workload: str,
    *,
    job_count: int = 300,
    seed: int = 0,
    grow_threshold: int = 0,
) -> ExperimentConfig:
    """Configuration of one Figure 7 run (PRA approach)."""
    return ExperimentConfig(
        name=f"figure7-{policy}-{workload}",
        workload=workload,
        job_count=job_count,
        malleability_policy=policy,
        approach="PRA",
        placement_policy="WF",
        seed=seed,
        grow_threshold=grow_threshold,
    )


def run_figure7(
    *,
    job_count: int = 300,
    seed: int = 0,
    combinations: Sequence[tuple] = FIGURE7_COMBINATIONS,
    grow_threshold: int = 0,
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
) -> Dict[str, ExperimentResult]:
    """Run all Figure 7 combinations; returns results keyed by ``"policy/workload"``.

    A thin wrapper over the scenario engine: ``jobs`` fans the runs out over
    worker processes and ``cache`` (a directory or
    :class:`~repro.experiments.engine.ResultCache`) skips configurations that
    already ran.
    """
    from repro.experiments.scenarios import figure7_scenario, run_scenario, strip_seed_suffix

    results = run_scenario(
        figure7_scenario(combinations),
        job_count=job_count,
        seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        overrides={"grow_threshold": grow_threshold} if grow_threshold else None,
    )
    # One root seed => the bare "policy/workload" key is still unique.
    return {strip_seed_suffix(label): result for label, result in results.items()}


def _metrics(results: Dict[str, ExperimentResult]) -> Dict[str, ExperimentMetrics]:
    return {label: result.metrics for label, result in results.items()}


def figure7_report(results: Dict[str, ExperimentResult], *, samples: int = 8) -> str:
    """Plain-text rendering of all six panels of Figure 7."""
    metrics = _metrics(results)
    sections = [summary_table(metrics, title="Figure 7 - summary (PRA approach)")]

    sections.append(
        cdf_probe_table(
            metrics,
            "average_allocation",
            probes=[2, 5, 10, 15, 20, 25, 30],
            title="Figure 7(a) - % of jobs with average processors <= x",
        )
    )
    sections.append(
        cdf_probe_table(
            metrics,
            "maximum_allocation",
            probes=[2, 4, 8, 16, 24, 32, 40, 46],
            title="Figure 7(b) - % of jobs with maximum processors <= x",
        )
    )
    sections.append(
        cdf_probe_table(
            metrics,
            "execution_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1200],
            title="Figure 7(c) - % of jobs with execution time <= x seconds",
        )
    )
    sections.append(
        cdf_probe_table(
            metrics,
            "response_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1200],
            title="Figure 7(d) - % of jobs with response time <= x seconds",
        )
    )
    sections.append(
        cdf_plot(
            {label: m.execution_time_cdf() for label, m in metrics.items()},
            title="Figure 7(c) as a plot - execution time CDFs",
            x_label="execution time (s)",
        )
    )

    # Panels (e) and (f): time series sampled over the span of the runs.
    horizon = max(
        (result.workload_duration for result in results.values()), default=0.0
    )
    window_end = max(horizon, 1.0)
    fractions = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)[:samples]
    probes = [window_end * frac for frac in fractions]
    utilization = {
        label: [
            m.utilization_over(0.0, window_end, samples=200)[1][min(int(frac * 199), 199)]
            for frac in fractions
        ]
        for label, m in metrics.items()
    }
    sections.append(
        comparison_table(
            utilization,
            probes,
            title="Figure 7(e) - busy processors at selected times",
            probe_header="time (s)",
        )
    )
    activity = {}
    for label, m in metrics.items():
        times, counts = m.cumulative_grow_messages()
        series = []
        for t in probes:
            if len(times) == 0 or (times <= t).sum() == 0:
                series.append(0.0)
            else:
                series.append(float(counts[(times <= t).sum() - 1]))
        activity[label] = series
    sections.append(
        comparison_table(
            activity,
            probes,
            title="Figure 7(f) - cumulative grow messages at selected times",
            probe_header="time (s)",
        )
    )
    return "\n\n".join(sections)
