"""Shared experiment machinery: configuration, construction and execution.

An :class:`ExperimentConfig` captures one run of the paper's experimental
setup — which workload, which malleability policy, which job-management
approach, which placement policy, and the substrate parameters (GRAM
latencies, KIS poll interval, background load, seed).
:func:`run_experiment` builds the simulated DAS-3, the scheduler and the
workload submitter, runs the simulation to completion and returns the
collected :class:`~repro.metrics.collector.ExperimentMetrics`.
"""

from __future__ import annotations

import gc
import os

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

from repro.cluster.background import BackgroundLoadSpec
from repro.cluster.das3 import das3_multicluster
from repro.cluster.multicluster import Multicluster
from repro.koala.scheduler import KoalaScheduler, SchedulerConfig
from repro.metrics.collector import ExperimentMetrics
from repro.policies.registry import spec_string
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.workloads.registry import build_named_workload
from repro.workloads.spec import WorkloadSpec
from repro.workloads.submission import WorkloadSubmitter

#: Safety bound on simulated time: generous enough for every paper workload
#: (300 jobs, worst case fully serialised) while still bounding runaway runs.
DEFAULT_TIME_LIMIT = 500_000.0

#: Per-cluster fraction of capacity occupied, on average, by the jobs of
#: concurrent (non-KOALA) users.  The DAS-3 is a shared production research
#: testbed; the paper notes that "the only background load during the
#: experiments is the activity of concurrent users" and designs KOALA to be
#: resilient to load that bypasses it.  The exact background during the
#: paper's runs is unknowable; this default reproduces the two effects that
#: matter for the scheduling dynamics observed in Figures 7 and 8: (i) KOALA
#: jobs compete for a *fraction* of the machine, and (ii) the load is uneven
#: across clusters, so the Worst-Fit policy concentrates KOALA jobs on the
#: one or two least-loaded clusters, where several malleable jobs then share
#: each batch of released processors.  Set the fraction to 0.0 to study the
#: policies on an otherwise empty system.
DEFAULT_BACKGROUND_PROFILE: Dict[str, float] = {
    "vu": 0.88,
    "uva": 0.92,
    "delft": 0.62,
    "multimedian": 0.90,
    "leiden": 0.85,
}

#: Uniform background fraction used when a single number is requested.
DEFAULT_BACKGROUND_FRACTION = 0.75

#: Heavier background used by the PWA experiments (Figure 8).  The paper's
#: PWA runs exhibit genuine overload — long queue waits, jobs stuck at their
#: minimum sizes and a malleability manager that eventually performs nothing
#: but initial placements — which on a 272-node system with 2-processor
#: placements only occurs when almost no capacity is left to KOALA.  This
#: profile reproduces that regime.
FIGURE8_BACKGROUND_PROFILE: Dict[str, float] = {
    "vu": 0.95,
    "uva": 0.95,
    "delft": 0.90,
    "multimedian": 0.95,
    "leiden": 0.93,
}


def default_background(
    fraction: "float | Dict[str, float] | None" = None,
    *,
    mean_duration: float = 600.0,
    min_processors: int = 2,
    max_processors: int = 12,
) -> Dict[str, BackgroundLoadSpec]:
    """Background-load specifications reproducing concurrent DAS-3 users.

    Each cluster receives an independent Poisson stream of rigid local jobs
    whose offered load equals its fraction of the cluster's capacity.
    *fraction* may be a single number applied to every cluster, a per-cluster
    mapping, or ``None`` for the calibrated :data:`DEFAULT_BACKGROUND_PROFILE`.
    """
    from repro.cluster.das3 import DAS3_CLUSTERS

    if fraction is None:
        fractions: Dict[str, float] = dict(DEFAULT_BACKGROUND_PROFILE)
    elif isinstance(fraction, dict):
        fractions = dict(fraction)
    else:
        value = float(fraction)
        if not 0.0 <= value < 1.0:
            raise ValueError("fraction must lie in [0, 1)")
        if value == 0.0:
            return {}
        fractions = {cluster.name: value for cluster in DAS3_CLUSTERS}

    mean_size = (min_processors + max_processors) / 2.0
    specs: Dict[str, BackgroundLoadSpec] = {}
    for cluster in DAS3_CLUSTERS:
        cluster_fraction = fractions.get(cluster.name, 0.0)
        if not 0.0 <= cluster_fraction < 1.0:
            raise ValueError(f"fraction for {cluster.name!r} must lie in [0, 1)")
        if cluster_fraction == 0.0:
            continue
        target_busy = cluster_fraction * cluster.nodes
        interarrival = (mean_size * mean_duration) / target_busy
        specs[cluster.name] = BackgroundLoadSpec(
            mean_interarrival=interarrival,
            mean_duration=mean_duration,
            min_processors=min_processors,
            max_processors=max_processors,
        )
    return specs


def _unknown_fields_message(unknown, valid) -> str:
    """The shared unknown-field error text (suggestion + valid-field list)."""
    from repro.refs import suggest

    hints = []
    for key in unknown:
        hint = suggest(key, valid)
        hints.append(f"{key!r} (did you mean {hint!r}?)" if hint else repr(key))
    return (
        f"unknown ExperimentConfig field(s) {', '.join(hints)}; "
        f"valid fields: {', '.join(sorted(valid))}"
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one experiment run.

    The defaults reproduce the paper's setup: the DAS-3 of Table I, Worst-Fit
    placement, FPSMA malleability management under PRA, workload Wm with 300
    jobs, no staging, and only incidental background load.

    The three policy fields accept anything the unified policy registry
    parses — a registered name (``"EGS"``), a parameterised reference
    (``"EASY?reserve_depth=2"`` or ``{"name": "EASY", "params": {...}}``) or
    a :class:`~repro.policies.registry.PolicySpec` — and are validated and
    canonicalised to their string form at construction time, so a typo'd
    policy fails immediately with the registered names listed, and the cache
    key of a parameterised run is stable.
    """

    name: str = "experiment"
    workload: str = "Wm"
    job_count: int = 300
    malleability_policy: Optional[str] = "FPSMA"
    approach: str = "PRA"
    placement_policy: str = "WF"
    seed: int = 0
    grow_threshold: int = 0
    grow_offer_mode: str = "released"
    poll_interval: float = 15.0
    gram_submission_latency: float = 5.0
    gram_recruit_latency: float = 0.5
    gram_latency_jitter: float = 0.2
    gram_concurrency: Optional[int] = 1
    adaptation_point_interval: float = 2.0
    background: Dict[str, BackgroundLoadSpec] = field(default_factory=dict)
    background_fraction: "float | Dict[str, float] | None" = None
    background_backfilling: bool = True
    reconfiguration_cost: Optional[float] = None
    fault_model: Optional[str] = None
    time_limit: float = DEFAULT_TIME_LIMIT
    #: Structured-trace target: a trace file (``.jsonl``/``.gz``) or a
    #: directory per-run files are created under; ``None`` disables tracing
    #: (unless ``$REPRO_TRACE`` activates it process-wide).  Participates in
    #: :meth:`to_dict` — and therefore the cache key — like every field, so
    #: a traced run is never served from an untraced run's cache entry.
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        # Validate and canonicalise the policy references now, not when the
        # scheduler is eventually built (the dataclass is frozen, hence the
        # object.__setattr__ dance).
        object.__setattr__(
            self, "placement_policy", spec_string("placement", self.placement_policy)
        )
        if self.malleability_policy is not None:
            object.__setattr__(
                self,
                "malleability_policy",
                spec_string("malleability", self.malleability_policy),
            )
        object.__setattr__(self, "approach", spec_string("approach", self.approach))
        if self.fault_model is not None:
            # Same treatment as the policy axes: a typo'd fault reference
            # fails here with the registered model names listed, and the
            # canonical form keeps result-cache keys stable.
            from repro.faults.models import fault_reference_string

            object.__setattr__(
                self, "fault_model", fault_reference_string(self.fault_model)
            )

    @property
    def label(self) -> str:
        """Short label used in reports (e.g. ``"FPSMA/Wm"``)."""
        policy = self.malleability_policy or "none"
        return f"{policy}/{self.workload}"

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of this configuration with some fields replaced, validated.

        The single override surface used by ``repro-cli``, the daemon's
        submit path and scenario sweeps: a typo'd field name raises
        :class:`ValueError` here — listing the valid fields and suggesting
        the closest one — instead of surfacing later as an opaque
        ``TypeError`` from the dataclass constructor.  Values still go
        through ``__post_init__``, so policy/trace/fault references are
        validated and canonicalised exactly as at construction.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ValueError(_unknown_fields_message(unknown, valid))
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation of the configuration.

        Nested :class:`~repro.cluster.background.BackgroundLoadSpec` values
        are flattened to plain dicts; everything else is already a scalar.
        The representation is the cache key's input, so it must be complete:
        every field that influences a run appears here.  For file-backed
        trace workloads that includes a digest of the trace file itself —
        the reference string alone would serve stale cached results after
        the ``.swf`` file is edited.  (:meth:`from_dict` ignores the extra
        key: it is derived, not a configuration field.)
        """
        data: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "background":
                value = {
                    name: {
                        "mean_interarrival": spec.mean_interarrival,
                        "mean_duration": spec.mean_duration,
                        "min_processors": spec.min_processors,
                        "max_processors": spec.max_processors,
                        "start_time": spec.start_time,
                        "end_time": spec.end_time,
                    }
                    for name, spec in sorted(value.items())
                }
            data[f.name] = value
        from repro.workloads.traces import is_trace_reference, trace_fingerprint

        if is_trace_reference(self.workload):
            fingerprint = trace_fingerprint(self.workload)
            if fingerprint is not None:
                data["workload_fingerprint"] = fingerprint
        if self.fault_model is not None:
            from repro.faults.models import fault_fingerprint

            fingerprint = fault_fingerprint(self.fault_model)
            if fingerprint is not None:
                data["fault_fingerprint"] = fingerprint
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored (forward compatibility for records written
        by newer code); use :meth:`from_fields` where a typo must fail.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        kwargs["background"] = {
            name: BackgroundLoadSpec(**spec)
            for name, spec in (kwargs.get("background") or {}).items()
        }
        return cls(**kwargs)

    #: Derived keys :meth:`to_dict` adds for cache keying; accepted (and
    #: recomputed, never trusted) when a rendered config comes back in.
    DERIVED_KEYS = ("workload_fingerprint", "fault_fingerprint")

    @classmethod
    def from_fields(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Strict :meth:`from_dict`: unknown field names raise.

        The submit-surface parser (daemon requests, CLI override mappings):
        a typo'd field fails here with the valid fields listed and the
        closest match suggested, exactly like :meth:`with_overrides`.
        """
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - valid - set(cls.DERIVED_KEYS))
        if unknown:
            raise ValueError(_unknown_fields_message(unknown, valid))
        return cls.from_dict(data)


@dataclass
class ExperimentResult:
    """The outcome of one experiment run.

    ``workload`` is the full specification when the run happened in this
    process, and ``None`` when the result was merged back from a worker
    subprocess or loaded from the on-disk cache — those paths only transport
    the JSON-serialisable fields.  Code that needs the submission horizon
    should use :attr:`workload_duration`, which survives every path.

    ``events_processed`` is the number of kernel events the simulation's run
    loop processed — the throughput denominator the benchmark subsystem
    reports as events/second.
    """

    config: ExperimentConfig
    metrics: ExperimentMetrics
    workload: Optional[WorkloadSpec]
    simulated_time: float
    all_done: bool
    workload_duration: float = 0.0
    events_processed: int = 0

    def __post_init__(self) -> None:
        if self.workload is not None and not self.workload_duration:
            self.workload_duration = float(self.workload.duration)

    @property
    def truncated(self) -> bool:
        """Whether the run hit its time limit before every job finished.

        A truncated run's metrics cover only the jobs that completed in time;
        callers (the CLI, reports) surface this loudly instead of passing the
        partial numbers off as a finished experiment.
        """
        return not self.all_done

    @property
    def label(self) -> str:
        """The configuration's label."""
        return self.config.label


def build_workload(config: ExperimentConfig, streams: RandomStreams) -> WorkloadSpec:
    """Create the workload specification named by *config*.

    Name resolution lives in :mod:`repro.workloads.registry`; the paper's
    ``Wm``, ``Wmr``, ``W'm`` and ``W'mr`` are pre-registered (the primes may
    also be written ``Wm'`` / ``Wmr'``) and new names become available to
    every experiment by calling
    :func:`~repro.workloads.registry.register_workload`.
    """
    return build_named_workload(
        config.workload, streams["workload"], job_count=config.job_count
    )


def build_system(
    config: ExperimentConfig,
    env: Environment,
    streams: RandomStreams,
    *,
    scheduler_extra: Optional[Dict[str, object]] = None,
) -> tuple[Multicluster, KoalaScheduler]:
    """Build the DAS-3 multicluster and a scheduler configured per *config*.

    ``scheduler_extra`` feeds :attr:`SchedulerConfig.extra` — the checkpoint
    restore path uses it to re-join the original KIS poll grid.
    """
    background = config.background or default_background(config.background_fraction)
    multicluster = das3_multicluster(
        env,
        streams=streams,
        background=background or None,
        gram_submission_latency=config.gram_submission_latency,
        gram_recruit_latency=config.gram_recruit_latency,
        gram_latency_jitter=config.gram_latency_jitter,
        gram_concurrency=config.gram_concurrency,
        local_backfilling=config.background_backfilling,
    )
    scheduler = KoalaScheduler(
        env,
        multicluster,
        SchedulerConfig(
            placement_policy=config.placement_policy,
            malleability_policy=config.malleability_policy,
            approach=config.approach,
            grow_threshold=config.grow_threshold,
            grow_offer_mode=config.grow_offer_mode,
            poll_interval=config.poll_interval,
            adaptation_point_interval=config.adaptation_point_interval,
            extra=dict(scheduler_extra or {}),
        ),
        streams=streams,
    )
    return multicluster, scheduler


def _profile_registry(config: ExperimentConfig):
    """The application-profile registry for *config*.

    ``None`` (the default registry) unless the configuration overrides the
    applications' reconfiguration cost, in which case the paper's two
    profiles are re-registered with a constant data-redistribution pause.
    """
    if config.reconfiguration_cost is None:
        return None
    from repro.apps.profiles import ProfileRegistry, ft_profile, gadget2_profile
    from repro.apps.reconfiguration import ConstantReconfigurationCost

    cost = ConstantReconfigurationCost(config.reconfiguration_cost)
    registry = ProfileRegistry()
    registry.register(ft_profile(reconfiguration=cost), overwrite=True)
    registry.register(gadget2_profile(reconfiguration=cost), overwrite=True)
    return registry


def run_experiment(
    config: ExperimentConfig, *, workload: Optional[WorkloadSpec] = None
) -> ExperimentResult:
    """Run one experiment to completion and collect its metrics.

    Parameters
    ----------
    config:
        The experiment configuration.
    workload:
        Pre-built workload specification.  When omitted the workload named in
        the configuration is generated from the configuration's seed, so two
        configurations with the same seed and workload name replay *exactly*
        the same submissions — the property the paper relies on when
        comparing FPSMA and EGS.
    """
    streams = RandomStreams(seed=config.seed)
    env = Environment()
    tracer = None
    trace_target = config.trace or os.environ.get("REPRO_TRACE")
    if trace_target:
        # Attached before the system is built so construction-time
        # scheduling (KIS poll, background generators) is traced too.
        from repro.obs.trace import Tracer, open_sink, resolve_trace_path

        tracer = Tracer(
            open_sink(resolve_trace_path(trace_target, config)),
            meta={
                "label": config.label,
                "seed": config.seed,
                "queue": env.queue_name,
                "workload": config.workload,
                "job_count": config.job_count,
            },
        )
        env.set_tracer(tracer)
    try:
        if workload is None:
            workload = build_workload(config, streams)
        multicluster, scheduler = build_system(config, env, streams)
        injector = None
        if config.fault_model is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(env, scheduler, config.fault_model, streams)
        submitter = WorkloadSubmitter(
            env, scheduler, workload, registry=_profile_registry(config)
        )
        if tracer is not None:
            scheduler.hooks.set_tracer(tracer)
            tracer.record(
                "run_start",
                label=config.label,
                seed=config.seed,
                queue=env.queue_name,
                time_limit=config.time_limit,
            )

        # Run until every submitted job has finished (checking periodically,
        # because the information-service poll and the background generators
        # keep producing events forever), bounded by the configured time
        # limit.
        #
        # The cyclic garbage collector is paused for the duration of the run:
        # the event loop allocates heavily (events, schedule entries,
        # generator frames) but almost everything dies by reference counting,
        # so the periodic generation-0 scans only cost time.  The pause is
        # skipped when the caller already disabled collection, and collection
        # is restored (and the run's survivors swept once) in all exit paths.
        check_interval = 300.0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            env.run(until=min(config.time_limit, max(workload.duration, check_interval)))
            while not (submitter.all_submitted.triggered and scheduler.all_done):
                if env.now >= config.time_limit:
                    break
                env.run(until=min(config.time_limit, env.now + check_interval))
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect(generation=0)

        metrics = ExperimentMetrics.from_run(
            scheduler, multicluster, label=config.label, faults=injector
        )
        if tracer is not None:
            import hashlib
            import json

            tracer.record(
                "run_end",
                t=env.now,
                events=env.processed_events,
                all_done=scheduler.all_done,
                digest=hashlib.sha256(
                    json.dumps(metrics.to_dict(), sort_keys=True).encode("utf-8")
                ).hexdigest(),
            )
    finally:
        if tracer is not None:
            env.set_tracer(None)
            tracer.close()
    return ExperimentResult(
        config=config,
        metrics=metrics,
        workload=workload,
        simulated_time=env.now,
        all_done=scheduler.all_done,
        events_processed=env.processed_events,
    )
