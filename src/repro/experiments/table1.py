"""Table I — the distribution of the nodes over the DAS-3 clusters.

The substrate every experiment runs on: five clusters, 272 nodes in total.
Exposed as a scenario (``repro-cli run table1``) so the reproduction's system
description is generated from the same cluster specifications the simulator
instantiates, not maintained by hand.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.das3 import DAS3_CLUSTERS
from repro.metrics.reports import format_table


def table1_rows() -> List[Tuple[str, int, str]]:
    """``(location, nodes, interconnect)`` for every DAS-3 cluster."""
    return [(spec.location, spec.nodes, spec.interconnect) for spec in DAS3_CLUSTERS]


def table1_report() -> str:
    """Plain-text rendering of Table I."""
    return format_table(
        ["Cluster location", "Nodes", "Interconnect"],
        table1_rows(),
        title="Table I - the distribution of the nodes over the DAS clusters",
    )
