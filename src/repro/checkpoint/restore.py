"""Restoring a checkpoint envelope into a live, continuable simulation run.

Native restore rebuilds the run object graph from the captured state and —
this is the delicate part — re-creates the *pending event queue* so that the
remaining drain order is identical to the uninterrupted run's:

* Events scheduled for the same instant drain in ``(priority, event id)``
  order, and event ids are allocated when events are *scheduled*, so only
  the **relative** id order of the pending timeouts matters (restored ids
  differ from the originals by a uniform construction offset, which can
  never reorder a tie).
* The capture recorded one *intent* per pending timeout — who owns it
  (workload submitter, KIS poll loop, or a running application) and the
  original id.  Restore creates the owner processes in ascending original-id
  order.  Every process schedules its ``Initialize`` at creation (URGENT, at
  the restore instant), the initializes drain in creation order, and each
  first advance allocates its resume-timeout's id — so the rebuilt timeouts
  carry ids in exactly the captured relative order.
* Running rigid applications are rehydrated as two tiny generators (the
  application finishing at its recorded absolute instant; its runner
  collecting the completion) whose observable effects — events pushed,
  callbacks run, records filled — replicate the original
  ``RunningApplication._compute`` / ``RigidRunner._start_process`` tails
  bit for bit.

Replay restore is the general path: re-run the deterministic simulation
from time zero to the capture instant, then *prove* it re-reached the
captured state (kernel fingerprint, RNG lanes, submitter cursor, metrics
window) before handing the run back.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.apps.profiles import default_registry
from repro.apps.runtime import RunningApplication
from repro.checkpoint.capture import (
    kernel_fingerprint,
    native_unsupported_reason,
    step_until,
    workload_digest,
)
from repro.checkpoint.envelope import RestoreError, load_checkpoint, validate_envelope
from repro.checkpoint.runner import SimulationRun
from repro.cluster.gram import GramJob
from repro.experiments.setup import (
    ExperimentConfig,
    _profile_registry,
    build_system,
    build_workload,
)
from repro.koala.job import Job, JobState
from repro.koala.kis import KisSnapshot
from repro.metrics.windowed import WindowedCollector, WindowedMetrics
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.workloads.submission import WorkloadSubmitter


def _resume_app(env, application, finish_at: float):
    """Rehydrated tail of ``RunningApplication._compute`` for a rigid app.

    The original process would sleep until its completion instant and then
    run ``_finish()``; the work already done before the checkpoint needs no
    re-simulation, so the rehydrated process is exactly that tail.
    """
    yield env.timeout_at(finish_at)
    application._finish()


def _resume_runner(runner):
    """Rehydrated tail of ``RigidRunner._start_process``."""
    record = yield runner.application.completed
    if not runner._killed:
        runner._finish(record)


def _fromhex(value: str) -> float:
    try:
        return float.fromhex(value)
    except (TypeError, ValueError) as error:
        raise RestoreError(f"malformed float field {value!r}: {error}") from None


def restore_run(
    data: Dict[str, Any], *, workload=None, collect_windowed: bool = True
) -> SimulationRun:
    """Rebuild a live :class:`SimulationRun` from a checkpoint envelope.

    Dispatches on the envelope's ``mode``.  The returned run continues from
    the capture instant; advancing it (``run_to_completion``) produces a
    remaining event sequence — and therefore final metrics — identical to
    the run the checkpoint was captured from.

    A run over a workload object that is *not* derivable from its
    configuration (a hand-built :class:`~repro.workloads.spec.WorkloadSpec`)
    can only be restored by passing the same *workload* back in — the
    envelope carries a content digest and the restore refuses a workload
    that differs from the captured one.
    """
    validate_envelope(data)
    config = ExperimentConfig.from_dict(data["config"])
    mode = data["mode"]
    if mode == "native":
        return _restore_native(data, config, collect_windowed, workload=workload)
    if mode == "replay":
        return _restore_replay(data, config, workload=workload)
    raise RestoreError(f"unknown checkpoint mode {mode!r}")


def resume_run(
    source: Union[str, Path, Dict[str, Any]],
    *,
    workload=None,
    collect_windowed: bool = True,
) -> SimulationRun:
    """Load a checkpoint (path or envelope) and restore it."""
    if isinstance(source, (str, Path)):
        data = load_checkpoint(source)
    else:
        data = source
    return restore_run(data, workload=workload, collect_windowed=collect_windowed)


def _check_workload(data: Dict[str, Any], workload) -> None:
    """Verify the restore-side workload matches the captured one exactly."""
    size = int(data["workload_size"])
    if len(workload.jobs) != size:
        raise RestoreError(
            f"restore workload has {len(workload.jobs)} jobs, checkpoint "
            f"recorded {size} (configuration/seed mismatch?)"
        )
    captured = data.get("workload_digest")
    if captured is not None and workload_digest(workload) != captured:
        raise RestoreError(
            "restore workload content differs from the captured one; a run "
            "over a custom WorkloadSpec must be restored with "
            "restore_run(..., workload=<the same spec>)"
        )


# -- native ------------------------------------------------------------------


def _restore_native(
    data: Dict[str, Any],
    config: ExperimentConfig,
    collect_windowed: bool,
    workload=None,
) -> SimulationRun:
    at = _fromhex(data["time"])
    cursor = int(data["cursor"])
    workload_size = int(data["workload_size"])

    streams = RandomStreams(seed=config.seed)
    env = Environment(initial_time=at)
    if workload is None:
        workload = build_workload(config, streams)
    _check_workload(data, workload)
    reason = native_unsupported_reason(config, workload)
    if reason is not None:
        raise RestoreError(
            f"envelope claims native mode but the configuration is outside "
            f"the native envelope: {reason}"
        )
    if not 0 <= cursor <= workload_size:
        raise RestoreError(f"cursor {cursor} outside workload [0, {workload_size}]")

    next_poll = _fromhex(data["kis"]["next_poll"])
    multicluster, scheduler = build_system(
        config,
        env,
        streams,
        scheduler_extra={"kis_first_poll_at": next_poll, "kis_defer_polling": True},
    )
    registry = _profile_registry(config) or default_registry()

    # Queued jobs: rebuilt directly into the placement queue (not through
    # ``scheduler.submit()``, which would stamp current-time submit times,
    # bump the accepted counter and emit a JobSubmitted trigger).
    for queued in data["queued"]:
        profile = registry.get(queued["profile"])
        job = Job.rigid(profile.as_rigid(), int(queued["processors"]), name=queued["name"])
        job.submit_time = _fromhex(queued["submit"])
        job.state = JobState.QUEUED
        job.placement_tries = int(queued["tries"])
        scheduler._runners[job.job_id] = scheduler.runners.create_runner(job)
        entry = scheduler.queue.enqueue(job, _fromhex(queued["enqueued"]))
        entry.tries = int(queued["tries"])
        entry.last_failure_reason = queued.get("reason", "")

    # Running jobs: allocation, GRAM bookkeeping and application record are
    # rebuilt synchronously; their processes are created in the intent pass
    # below so event ids land in the captured relative order.
    rehydrated: Dict[str, Tuple[Any, RunningApplication, float]] = {}
    for running in data["running"]:
        profile = registry.get(running["profile"])
        processors = int(running["processors"])
        cluster_name = running["cluster"]
        job = Job.rigid(profile.as_rigid(), processors, name=running["name"])
        job.submit_time = _fromhex(running["submit"])
        job.start_time = _fromhex(running["start"])
        job.state = JobState.RUNNING
        job.single_component.cluster = cluster_name
        runner = scheduler.runners.create_runner(job)
        runner.cluster_name = cluster_name
        scheduler._runners[job.job_id] = runner

        allocation = multicluster.cluster(cluster_name).try_allocate(
            processors, owner=job.name, kind="grid"
        )
        if allocation is None:
            raise RestoreError(
                f"cluster {cluster_name!r} cannot re-allocate {processors} "
                f"processors for running job {job.name!r}"
            )
        gram_job = GramJob(owner=job.name, processors=processors)
        gram_job.allocation = allocation
        gram_job.submitted_at = job.start_time
        gram_job.active_at = job.start_time
        endpoint = multicluster.gram(cluster_name)
        endpoint.jobs.append(gram_job)
        endpoint.submitted_count += 1
        runner.gram_jobs.append(gram_job)

        application = RunningApplication(
            env,
            job.profile,
            processors,
            job_id=job.name,
            adaptation_point_interval=scheduler.config.adaptation_point_interval,
            rng=scheduler.streams["applications"],
        )
        application.record.submit_time = job.submit_time
        application.record.start_time = job.start_time
        application.record.allocation_series.record(job.start_time, processors)
        runner.application = application
        scheduler._running[job.job_id] = job
        rehydrated[job.name] = (runner, application, _fromhex(running["finish"]))

    # The rebuilt allocations must reproduce the captured idle counters
    # exactly — a mismatch means the checkpoint and the rebuilt cluster
    # model disagree about capacity, and every later placement would differ.
    captured_idle = {name: int(v) for name, v in data["idle"].items()}
    actual_idle = {name: int(v) for name, v in dict(multicluster.state.idle_view()).items()}
    if actual_idle != captured_idle:
        raise RestoreError(
            f"idle processors after rebuild {actual_idle} != captured {captured_idle}"
        )

    counters = data["counters"]
    scheduler._accepted_count = int(counters["accepted"])
    scheduler._finished_count = int(counters["finished"])
    scheduler._failed_count = int(counters["failed"])
    in_flight = len(data["queued"]) + len(data["running"])
    if scheduler._accepted_count - scheduler._finished_count - scheduler._failed_count != in_flight:
        raise RestoreError(
            f"counters {counters} inconsistent with {in_flight} in-flight job(s)"
        )

    kis = scheduler.kis
    kis._snapshot = KisSnapshot(
        time=_fromhex(data["kis"]["snapshot_time"]),
        idle_processors={
            name: int(v) for name, v in data["kis"]["snapshot_idle"].items()
        },
    )
    kis.next_poll_time = next_poll

    # Intent pass: create the owner process of every pending timeout in
    # ascending original-event-id order (see the module docstring).
    submitter: Optional[WorkloadSubmitter] = None
    for intent in data["intents"]:
        kind = intent["kind"]
        if kind == "submit":
            if submitter is not None:
                raise RestoreError("duplicate submit intent in checkpoint")
            submitter = WorkloadSubmitter(
                env,
                scheduler,
                workload,
                registry=_profile_registry(config),
                start_index=cursor,
                retain_jobs=bool(data.get("retain_jobs", True)),
            )
        elif kind == "kis":
            kis.start_polling()
        elif kind == "app":
            try:
                runner, application, finish_at = rehydrated[intent["job"]]
            except KeyError:
                raise RestoreError(
                    f"intent references unknown running job {intent['job']!r}"
                ) from None
            process = env.process(_resume_app(env, application, finish_at))
            # Wire the process back into the application so a later
            # re-capture (and the runtime's is-alive guards) see a started
            # application.  Safe: under the native envelope nothing
            # interrupts a rigid application mid-flight.
            application._process = process
            env.process(_resume_runner(runner))
        else:
            raise RestoreError(f"unknown intent kind {kind!r}")
    if kis._poll_process is None:
        raise RestoreError("checkpoint has no pending KIS poll intent")
    if submitter is None:
        if cursor != workload_size:
            raise RestoreError(
                f"cursor {cursor} < workload size {workload_size} but no "
                f"submission intent was captured"
            )
        # Fully submitted workload: the submitter exists only as bookkeeping
        # (its loop terminates at the first advance).
        submitter = WorkloadSubmitter(
            env,
            scheduler,
            workload,
            registry=_profile_registry(config),
            start_index=cursor,
            retain_jobs=bool(data.get("retain_jobs", True)),
        )

    streams.restore_lane_states(data["lanes"])

    collector: Optional[WindowedCollector] = None
    if collect_windowed:
        window = (
            WindowedMetrics.from_dict(data["window"])
            if "window" in data
            else WindowedMetrics()
        )
        collector = WindowedCollector(window)
        scheduler.hooks.subscribe(collector)

    return SimulationRun(
        config=config,
        env=env,
        streams=streams,
        workload=workload,
        multicluster=multicluster,
        scheduler=scheduler,
        submitter=submitter,
        injector=None,
        collector=collector,
    )


# -- replay ------------------------------------------------------------------


def _restore_replay(
    data: Dict[str, Any], config: ExperimentConfig, workload=None
) -> SimulationRun:
    at = _fromhex(data["time"])
    run = SimulationRun.fresh(
        config,
        workload=workload,
        retain_jobs=bool(data.get("retain_jobs", True)),
        collect_windowed="window" in data,
    )
    _check_workload(data, run.workload)
    step_until(run.env, at)

    fingerprint = kernel_fingerprint(run.env)
    captured = data["kernel"]
    if fingerprint != captured:
        raise RestoreError(
            "replayed run did not re-reach the captured kernel state at "
            f"t={at}: replayed {_summarise(fingerprint)} != captured "
            f"{_summarise(captured)}"
        )
    if run.submitter.cursor != int(data["cursor"]):
        raise RestoreError(
            f"replayed submitter cursor {run.submitter.cursor} != captured "
            f"{data['cursor']}"
        )
    lanes = run.streams.lane_states()
    if lanes != data["lanes"]:
        raise RestoreError("replayed random-stream lanes differ from captured")
    if "window" in data and run.collector is not None:
        if run.collector.window.to_dict() != data["window"]:
            raise RestoreError(
                "replayed metrics window differs from captured "
                f"(digest {run.collector.window.digest} != {data['window'].get('digest')})"
            )
    return run


def _summarise(fingerprint: Dict[str, Any]) -> str:
    """Short human-readable form of a kernel fingerprint for error text."""
    return json.dumps(
        {
            "now": fingerprint.get("now"),
            "event_id": fingerprint.get("event_id"),
            "events_processed": fingerprint.get("events_processed"),
            "pending": len(fingerprint.get("pending", [])),
        },
        sort_keys=True,
    )
