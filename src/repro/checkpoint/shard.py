"""Time-sharded parallel replay of huge workloads.

Long traces of bursty arrivals (the million-job replay regime) spend most of
their simulated horizon with the system fully drained between bursts.  The
shard engine exploits that: it cuts the workload at submit-time gaps of at
least ``min_gap`` seconds, replays every window as an *independent*
simulation in a worker process, then validates and stitches the windows
deterministically:

* every window keeps its **absolute** submit times, and each worker's KIS
  poll loop is aligned onto the serial run's poll grid (polls at exact
  multiples of the poll interval), so within a window every event instant —
  and therefore every per-job ``(submit, start, finish, allocation)`` tuple —
  is bit-identical to the serial run's;
* a window boundary is *valid* if the previous window finished strictly
  before the next window's first submission (the serial system would have
  been empty, so independence was real, not assumed).  The first violated
  boundary invalidates every later window; those jobs are re-run serially
  in-process — the result is always exact, sharding is only a speed-up;
* per-window :class:`~repro.metrics.windowed.WindowedMetrics` merge
  commutatively, and the merged completion digest equals the serial run's —
  checked in the test suite and by the ``repro-bench shard-replay`` gate.

Sharding shares the native-capture support envelope
(:func:`~repro.checkpoint.capture.native_unsupported_reason`): the
window-equivalence argument needs runs that draw nothing from runtime random
streams and keep no cross-window scheduler state.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.checkpoint.capture import native_unsupported_reason
from repro.checkpoint.envelope import CheckpointUnsupported
from repro.checkpoint.runner import SimulationRun
from repro.experiments.setup import ExperimentConfig, build_workload
from repro.koala.job import JobKind
from repro.metrics.windowed import WindowedMetrics
from repro.sim.rng import RandomStreams
from repro.workloads.spec import JobSpec, WorkloadSpec

#: Default minimum submit-time gap (seconds) at which the workload is cut.
#: Must exceed the longest job runtime plus scheduling latency so windows
#: usually drain before the next one starts; violations are detected and
#: repaired, not silently absorbed.
DEFAULT_MIN_GAP = 600.0


@dataclass(frozen=True)
class ShardWindow:
    """One contiguous slice of the workload, cut at arrival gaps."""

    index: int
    start: int  # first spec index (inclusive)
    end: int  # last spec index (exclusive)
    first_submit: float
    last_submit: float

    @property
    def jobs(self) -> int:
        return self.end - self.start


@dataclass
class ShardReplayResult:
    """Outcome of a sharded replay."""

    windows: List[ShardWindow]
    valid_windows: int
    fallback_from: Optional[int]
    metrics: WindowedMetrics
    events_processed: int
    all_done: bool
    workers: int
    window_results: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def sharded(self) -> bool:
        """Whether any parallel window result was actually used."""
        return self.valid_windows > 0 and len(self.windows) > 1


def plan_windows(workload: WorkloadSpec, *, min_gap: float = DEFAULT_MIN_GAP) -> List[ShardWindow]:
    """Cut *workload* at submit-time gaps of at least *min_gap* seconds."""
    if min_gap <= 0:
        raise ValueError("min_gap must be positive")
    jobs = workload.jobs
    if not jobs:
        return []
    windows: List[ShardWindow] = []
    start = 0
    for index in range(1, len(jobs)):
        if jobs[index].submit_time - jobs[index - 1].submit_time >= min_gap:
            windows.append(
                ShardWindow(
                    index=len(windows),
                    start=start,
                    end=index,
                    first_submit=jobs[start].submit_time,
                    last_submit=jobs[index - 1].submit_time,
                )
            )
            start = index
    windows.append(
        ShardWindow(
            index=len(windows),
            start=start,
            end=len(jobs),
            first_submit=jobs[start].submit_time,
            last_submit=jobs[-1].submit_time,
        )
    )
    return windows


def _spec_dict(spec: JobSpec) -> Dict[str, Any]:
    """Exact (hex-float) wire form of one job spec for worker payloads."""
    return {
        "submit": float(spec.submit_time).hex(),
        "profile": spec.profile_name,
        "kind": spec.kind.value,
        "initial": int(spec.initial_processors),
        "min": int(spec.minimum_processors),
        "max": None if spec.maximum_processors is None else int(spec.maximum_processors),
        "name": spec.name,
    }


def _spec_from_dict(data: Dict[str, Any]) -> JobSpec:
    return JobSpec(
        submit_time=float.fromhex(data["submit"]),
        profile_name=data["profile"],
        kind=JobKind(data["kind"]),
        initial_processors=int(data["initial"]),
        minimum_processors=int(data["min"]),
        maximum_processors=None if data["max"] is None else int(data["max"]),
        name=data["name"],
    )


def _window_payload(
    config: ExperimentConfig, workload: WorkloadSpec, window: ShardWindow
) -> Dict[str, Any]:
    return {
        "config": config.to_dict(),
        "name": f"{workload.name}[{window.start}:{window.end}]",
        "start": window.start,
        "end": window.end,
        "specs": [_spec_dict(spec) for spec in workload.jobs[window.start : window.end]],
    }


def _replay_window(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Replay one window to completion (runs in a worker process).

    The window keeps its absolute submit times; the KIS poll loop is told to
    take its first poll at the last serial-grid poll instant not after the
    window's first submission, so the calendar queue jumps over the empty
    prefix in one step while every poll at or after the first arrival lands
    on exactly the serial run's poll instants.  (Poll instants are exact
    integer multiples of the poll interval in both runs, so the alignment is
    bit-exact, not approximate.)
    """
    config = ExperimentConfig.from_dict(payload["config"])
    specs = [_spec_from_dict(data) for data in payload["specs"]]
    workload = WorkloadSpec(name=payload["name"], jobs=specs)

    scheduler_extra: Optional[Dict[str, object]] = None
    if specs:
        first_submit = specs[0].submit_time
        grid_steps = math.floor(first_submit / config.poll_interval)
        first_poll = grid_steps * config.poll_interval
        if first_poll > 0.0:
            scheduler_extra = {"kis_first_poll_at": first_poll}

    run = SimulationRun.fresh(
        config,
        workload=workload,
        retain_jobs=False,
        collect_windowed=True,
        scheduler_extra=scheduler_extra,
    )
    run.run_to_completion(drain=True)
    return {
        "index": payload.get("index"),
        "start": payload["start"],
        "end": payload["end"],
        "window": run.collector.window.to_dict(),
        "all_done": run.done,
        "events": run.env.processed_events,
        "simulated_time": run.env.now,
    }


def shard_replay(
    config: ExperimentConfig,
    *,
    workload: Optional[WorkloadSpec] = None,
    min_gap: float = DEFAULT_MIN_GAP,
    workers: Optional[int] = None,
    force_sequential: bool = False,
) -> ShardReplayResult:
    """Replay *config*'s workload in parallel time shards, exactly.

    Raises :class:`CheckpointUnsupported` when the configuration falls
    outside the shard-equivalence envelope (same envelope as native
    checkpoints).  The result's metrics — including the per-job completion
    digest — equal a serial run's for every input: windows whose
    independence assumption fails are detected and re-run serially.
    """
    if workload is None:
        workload = build_workload(config, RandomStreams(seed=config.seed))
    reason = native_unsupported_reason(config, workload)
    if reason is not None:
        raise CheckpointUnsupported(
            f"sharded replay is not supported for this configuration: {reason}"
        )
    windows = plan_windows(workload, min_gap=min_gap)
    if not windows:
        return ShardReplayResult(
            windows=[],
            valid_windows=0,
            fallback_from=None,
            metrics=WindowedMetrics(),
            events_processed=0,
            all_done=True,
            workers=0,
        )

    payloads = [_window_payload(config, workload, window) for window in windows]
    for window, payload in zip(windows, payloads):
        payload["index"] = window.index

    if force_sequential or len(windows) == 1:
        worker_count = 0
        results = [_replay_window(payload) for payload in payloads]
    else:
        # An explicit worker count is honoured as given (tests exercise the
        # process pool on single-core boxes); the default adapts to the host.
        if workers is not None:
            worker_count = min(int(workers), len(windows))
        else:
            worker_count = min(4, os.cpu_count() or 1, len(windows))
        worker_count = max(worker_count, 1)
        if worker_count == 1:
            results = [_replay_window(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=worker_count) as executor:
                results = list(executor.map(_replay_window, payloads))

    # Left-to-right validation: window i+1 was simulated under the assumption
    # that everything before it had drained.  A window counts as valid only
    # if it completed AND finished strictly before its successor's first
    # submission; the first window failing either check — and everything
    # after it — is re-run serially.  On a boundary violation the violating
    # window itself is what the serial tail must start from: its jobs are
    # the leaked state the next window's entry depends on, so it is dropped
    # from the merged prefix and re-simulated (identically — its own entry
    # was clean) as the head of the tail.
    valid = 0
    fallback_from: Optional[int] = None
    for index, result in enumerate(results):
        if not result["all_done"]:
            fallback_from = index
            break
        if index + 1 < len(windows):
            last_finish = WindowedMetrics.from_dict(result["window"]).last_finish
            if last_finish >= windows[index + 1].first_submit:
                fallback_from = index
                break
        valid += 1

    merged = WindowedMetrics()
    for result in results[:valid]:
        merged.merge(WindowedMetrics.from_dict(result["window"]))
    events = sum(result["events"] for result in results[:valid])
    all_done = True

    if fallback_from is not None:
        # Serial repair: every spec from the first invalid window onward is
        # re-run in-process as one window (exact by construction).
        tail_start = windows[fallback_from].start
        tail_payload = {
            "config": config.to_dict(),
            "name": f"{workload.name}[{tail_start}:]",
            "start": tail_start,
            "end": len(workload.jobs),
            "index": None,
            "specs": [_spec_dict(spec) for spec in workload.jobs[tail_start:]],
        }
        tail_result = _replay_window(tail_payload)
        merged.merge(WindowedMetrics.from_dict(tail_result["window"]))
        events += tail_result["events"]
        all_done = bool(tail_result["all_done"])
        results = results[:valid] + [tail_result]

    return ShardReplayResult(
        windows=windows,
        valid_windows=valid,
        fallback_from=fallback_from,
        metrics=merged,
        events_processed=events,
        all_done=all_done,
        workers=worker_count,
        window_results=results,
    )


def shard_bench_config(job_count: int, seed: int = 0) -> ExperimentConfig:
    """The canonical configuration of the ``shard-replay`` bench scenario.

    Deterministic rigid bursts on an otherwise empty DAS-3 — inside the
    shard-equivalence envelope by construction, and with a time limit that
    accommodates the million-job horizon (the default 500 ks limit would
    truncate it).
    """
    return ExperimentConfig(
        name="shard-replay",
        workload="shard-bursts",
        job_count=int(job_count),
        malleability_policy=None,
        approach="PRA",
        placement_policy="WF",
        seed=int(seed),
        gram_latency_jitter=0.0,
        background_fraction=0.0,
        time_limit=4.0e9,
    )


def shard_replay_bench(
    *,
    job_count: int,
    seed: int = 0,
    min_gap: Optional[float] = None,
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Benchmark hook: one timed sharded replay at *job_count* jobs.

    Returns the fields :func:`repro.bench.runner.run_bench` folds into a
    :class:`~repro.bench.runner.BenchRecord`.
    """
    config = shard_bench_config(job_count, seed)
    started = perf_counter()
    result = shard_replay(
        config,
        min_gap=min_gap if min_gap is not None else DEFAULT_MIN_GAP,
        workers=workers,
    )
    elapsed = perf_counter() - started
    if not result.all_done:
        raise RuntimeError(
            f"shard-replay bench did not complete all {job_count} jobs "
            f"({result.metrics.jobs} finished)"
        )
    return {
        "runs": 1,
        "wall_clock_seconds": elapsed,
        "events_processed": result.events_processed,
        "metrics_digest": result.metrics.digest,
        "jobs": result.metrics.jobs,
        "windows": len(result.windows),
        "valid_windows": result.valid_windows,
        "workers": result.workers,
    }
