"""Capturing a running simulation into a checkpoint envelope.

Two capture modes share the envelope format:

``native``
    The full simulation state — queued jobs, running applications with their
    exact completion instants, the submitter cursor, the KIS poll grid, the
    per-cluster idle counters, the random-stream lane states — serialised so
    :func:`repro.checkpoint.restore.restore_run` can rebuild a run whose
    remaining event drain order (and therefore every per-job metric tuple)
    is byte-identical to the uninterrupted run.  Native capture is only
    offered for configurations inside a verified envelope (see
    :func:`native_unsupported_reason`); anything else raises
    :class:`~repro.checkpoint.envelope.CheckpointUnsupported` instead of
    producing a checkpoint that restores *almost* correctly.

``replay``
    A recovery point for arbitrary configurations: the envelope stores the
    configuration plus a kernel fingerprint, and restore re-runs the
    deterministic simulation from time zero to the capture instant, then
    *verifies* it re-reached exactly the captured kernel/lane/cursor state.
    Costs re-simulation time, supports every configuration.

Capture happens at a *safe point*: an instant where every same-time event
has drained and no transient scheduler activity (claim settlement, GRAM
submission flight, placement) is in progress — :func:`advance_to_safe_point`
steps the simulation forward to the next such instant.  At a safe point the
pending event queue of a native-capturable run consists of nothing but
process-resumption timeouts owned by three known process families (workload
submitter, KIS poll loop, running rigid applications); the capture walks the
queue and classifies every entry, refusing loudly on anything else.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint.envelope import CHECKPOINT_FORMAT, CheckpointUnsupported
from repro.koala.job import JobState
from repro.sim.core import EmptySchedule, Environment
from repro.sim.process import Process

#: Placement policies whose decisions depend only on the current idle view —
#: no retained state across events — making the rebuilt scheduler's future
#: decisions identical to the original's.  (EASY backfilling, by contrast,
#: carries reservations across events and is replay-mode only.)
NATIVE_PLACEMENT_POLICIES = {"WF", "CF", "CM", "FCM"}


def step_until(env: Environment, until: float) -> None:
    """Step the kernel through every event scheduled at or before *until*.

    The canonical advance loop of the checkpoint layer.  It deliberately
    avoids ``env.run(until=...)``, which schedules an internal stop event and
    thereby consumes an event id — harmless for metrics, fatal for the
    replay-mode fingerprint comparison, which requires the capture-side and
    restore-side kernels to have allocated *exactly* the same ids.  Safe on
    an empty queue (``peek()`` is ``inf``).
    """
    while env.peek() <= until:
        env.step()


def kernel_fingerprint(env: Environment) -> Dict[str, Any]:
    """JSON-able identity of the kernel state, pending queue included.

    Two runs with equal fingerprints have the same clock, the same event-id
    high-water mark and the same pending events in the same drain order —
    the replay-mode restore check.  Event *times* are rendered through
    ``float.hex`` so bit-equality is what is compared.
    """
    state = env.kernel_state()
    return {
        "now": float(env.now).hex(),
        "event_id": state["event_id"],
        "events_processed": state["events_processed"],
        "pending": [
            [float(time).hex(), int(priority), int(eid), type(event).__name__]
            for time, priority, eid, event in env.pending_entries()
        ],
    }


def native_unsupported_reason(config, workload=None) -> Optional[str]:
    """Why *config*/*workload* falls outside the native-capture envelope.

    ``None`` means native capture is supported.  A ``workload`` of ``None``
    skips the per-job checks — a config-only screen for callers deciding on
    a mode before the workload exists; :func:`capture_state` always re-checks
    with the real one.  The envelope is deliberately
    conservative: every feature listed here either keeps long-lived processes
    whose generator frames cannot be serialised (malleable applications,
    fault injectors, background generators) or draws from a random stream in
    ways the rebuilt run would not repeat bit-exactly (GRAM latency jitter).
    Replay-mode capture covers all of them.
    """
    if config.malleability_policy is not None:
        return (
            "malleable job management keeps mid-flight reconfiguration state "
            "inside application process frames"
        )
    if config.fault_model is not None:
        return "fault injection keeps an in-flight injector process"
    if config.gram_latency_jitter != 0.0:
        return "GRAM latency jitter draws from a random stream per submission"
    from repro.experiments.setup import default_background

    resolved_background = config.background or default_background(
        config.background_fraction
    )
    if resolved_background:
        return "background load keeps per-cluster generator processes"
    base_policy = str(config.placement_policy).split("?", 1)[0].upper()
    if base_policy not in NATIVE_PLACEMENT_POLICIES:
        return (
            f"placement policy {config.placement_policy!r} retains state across "
            f"events (native capture supports {sorted(NATIVE_PLACEMENT_POLICIES)})"
        )
    for spec in workload or ():
        if spec.kind.value != "rigid":
            return f"workload contains non-rigid job kind {spec.kind.value!r}"
        if not spec.name:
            return (
                "workload contains unnamed job specs (auto-generated names embed "
                "a process-global counter and do not survive a restore)"
            )
    return None


def _transient(scheduler, multicluster) -> bool:
    """Whether scheduler-level activity is mid-flight at the current instant.

    True while any of the states a checkpoint must not split is in progress:
    an unsettled processor claim, a GRAM submission between submit and
    active, or a job placed but not yet running.
    """
    if len(scheduler.ledger) > 0:
        return True
    for name in multicluster.cluster_names:
        for gram_job in multicluster.gram(name).jobs:
            if gram_job.allocation is None:
                return True
    for runner in scheduler._runners.values():
        if runner.job.state is JobState.PLACING:
            return True
    return False


def advance_to_safe_point(run, *, limit: Optional[float] = None) -> float:
    """Step *run* forward to the next instant where capture is possible.

    A safe point requires (i) every event scheduled at the current instant to
    have drained (``peek() > now`` — capture mid-instant would split a
    cascade of same-time events across the checkpoint) and (ii) no transient
    scheduler activity.  Returns the safe-point time.

    Raises :class:`CheckpointUnsupported` when no safe point is found before
    *limit* (default: the configuration's time limit).
    """
    env = run.env
    bound = float(limit) if limit is not None else float(run.config.time_limit)
    while env.peek() <= env.now or _transient(run.scheduler, run.multicluster):
        if env.now > bound:
            raise CheckpointUnsupported(
                f"no checkpoint-safe point found before t={bound}"
            )
        try:
            env.step()
        except EmptySchedule:  # pragma: no cover - defensive
            break
    return env.now


def workload_digest(workload) -> str:
    """Exact content digest of a workload specification.

    Restore rebuilds the workload from the configuration; the digest catches
    the silent failure mode where the rebuilt workload has the right *size*
    but different specs — a custom workload object, a changed generator, a
    different seed.  Cached on the spec object: a million-job workload is
    hashed once per process, not once per checkpoint.
    """
    cached = getattr(workload, "_checkpoint_digest", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for spec in workload.jobs:
        digest.update(
            (
                f"{float(spec.submit_time).hex()}|{spec.profile_name}|"
                f"{spec.kind.value}|{spec.initial_processors}|"
                f"{spec.minimum_processors}|{spec.maximum_processors}|{spec.name}\n"
            ).encode()
        )
    value = digest.hexdigest()
    workload._checkpoint_digest = value
    return value


def _base_payload(run, mode: str) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "mode": mode,
        "config": run.config.to_dict(),
        "time": float(run.env.now).hex(),
        "cursor": run.submitter.cursor,
        "workload_size": len(run.workload.jobs),
        "workload_digest": workload_digest(run.workload),
        "retain_jobs": run.submitter.retain_jobs,
        "lanes": run.streams.lane_states(),
        "kernel": kernel_fingerprint(run.env),
    }
    if run.collector is not None:
        payload["window"] = run.collector.window.to_dict()
    return payload


def _classify_pending(run) -> Tuple[List[Dict[str, Any]], Dict[str, str]]:
    """Classify every pending queue entry of a safe-point native capture.

    Returns ``(intents, finish_of)``: the intent list (one per pending
    timeout, ascending event id — the order restore re-creates their owner
    processes in) and the completion instant of each running job (hex).
    Raises :class:`CheckpointUnsupported` on any entry that is not a plain
    process-resumption timeout owned by a known process.
    """
    scheduler = run.scheduler
    owners: Dict[int, Tuple[str, Optional[str]]] = {}
    submit_process = run.submitter._process
    if submit_process is not None:
        owners[id(submit_process)] = ("submit", None)
    kis_process = scheduler.kis._poll_process
    if kis_process is not None:
        owners[id(kis_process)] = ("kis", None)
    for job in scheduler._running.values():
        runner = scheduler._runners[job.job_id]
        application = runner.application
        if application is None or application._process is None:
            raise CheckpointUnsupported(
                f"running job {job.name!r} has no application process to capture"
            )
        owners[id(application._process)] = ("app", job.name)

    intents: List[Dict[str, Any]] = []
    finish_of: Dict[str, str] = {}
    for time, priority, eid, event in run.env.pending_entries():
        callbacks = event.callbacks
        if callbacks is None or len(callbacks) != 1:
            raise CheckpointUnsupported(
                f"pending event {event!r} at t={time} has "
                f"{0 if callbacks is None else len(callbacks)} callbacks "
                f"(expected exactly one process resumption)"
            )
        callback = callbacks[0]
        if getattr(callback, "__func__", None) is not Process._resume:
            raise CheckpointUnsupported(
                f"pending event {event!r} at t={time} resumes {callback!r}, "
                f"not a simulation process"
            )
        owner = owners.get(id(callback.__self__))
        if owner is None:
            raise CheckpointUnsupported(
                f"pending event {event!r} at t={time} belongs to an "
                f"unrecognised process {callback.__self__!r}"
            )
        kind, job_name = owner
        intents.append(
            {
                "eid": int(eid),
                "kind": kind,
                "time": float(time).hex(),
                "job": job_name,
            }
        )
        if kind == "app" and job_name is not None:
            finish_of[job_name] = float(time).hex()
    intents.sort(key=lambda intent: intent["eid"])
    return intents, finish_of


def capture_state(run, *, mode: str = "native") -> Dict[str, Any]:
    """Serialise the current state of *run* into a checkpoint envelope.

    The run must be at a safe point (use :func:`advance_to_safe_point`);
    capture refuses mid-instant states outright.  ``mode="replay"`` captures
    the verification fingerprint only and works for every configuration;
    ``mode="native"`` additionally captures full scheduler/cluster state and
    is restricted to the envelope of :func:`native_unsupported_reason`.
    """
    if mode not in ("native", "replay"):
        raise ValueError(f"unknown capture mode {mode!r}")
    env = run.env
    if env.peek() <= env.now:
        raise CheckpointUnsupported(
            "capture requires a fully drained instant (events are still "
            "pending at the current time); call advance_to_safe_point() first"
        )
    if mode == "replay":
        return _base_payload(run, "replay")

    reason = native_unsupported_reason(run.config, run.workload)
    if reason is not None:
        raise CheckpointUnsupported(
            f"native capture is not supported for this configuration: {reason}; "
            f"use mode='replay'"
        )
    scheduler = run.scheduler
    if _transient(scheduler, run.multicluster):
        raise CheckpointUnsupported(
            "scheduler activity is mid-flight; call advance_to_safe_point() first"
        )
    if scheduler.finished or scheduler.failed:
        raise CheckpointUnsupported(
            "finished jobs have not been drained; call scheduler.drain_finished() "
            "(native checkpoints capture the in-flight working set only)"
        )

    intents, finish_of = _classify_pending(run)
    running_names = {job.name for job in scheduler._running.values()}
    missing = sorted(running_names - set(finish_of))
    if missing:
        raise CheckpointUnsupported(
            f"running job(s) {missing} have no pending completion timeout"
        )

    payload = _base_payload(run, "native")
    payload["queued"] = [
        {
            "name": entry.job.name,
            "profile": entry.job.profile.name,
            "processors": int(entry.job.single_component.processors),
            "submit": float(entry.job.submit_time).hex(),
            "enqueued": float(entry.enqueued_at).hex(),
            "tries": int(entry.tries),
            "reason": entry.last_failure_reason,
        }
        for entry in scheduler.queue
    ]
    payload["running"] = [
        {
            "name": job.name,
            "profile": job.profile.name,
            "processors": int(scheduler._runners[job.job_id].application.allocation),
            "submit": float(job.submit_time).hex(),
            "start": float(job.start_time).hex(),
            "finish": finish_of[job.name],
            "cluster": scheduler._runners[job.job_id].cluster_name,
        }
        for job in scheduler._running.values()
    ]
    payload["intents"] = intents
    kis = scheduler.kis
    kis_intents = [intent for intent in intents if intent["kind"] == "kis"]
    if len(kis_intents) != 1:
        raise CheckpointUnsupported(
            f"expected exactly one pending KIS poll, found {len(kis_intents)}"
        )
    payload["kis"] = {
        "next_poll": kis_intents[0]["time"],
        "snapshot_time": float(kis._snapshot.time).hex(),
        "snapshot_idle": {
            name: int(value)
            for name, value in sorted(kis._snapshot.idle_processors.items())
        },
    }
    payload["idle"] = {
        name: int(value)
        for name, value in sorted(dict(run.multicluster.state.idle_view()).items())
    }
    payload["counters"] = {
        "accepted": scheduler.accepted_count,
        "finished": scheduler.finished_count,
        "failed": scheduler.failed_count,
    }
    submit_intents = [intent for intent in intents if intent["kind"] == "submit"]
    if payload["cursor"] < payload["workload_size"] and not submit_intents:
        raise CheckpointUnsupported(
            "workload submission is incomplete but no submission timeout is "
            "pending (submitter mid-instant?)"
        )
    return payload
