"""Checkpoint envelopes: schema-versioned files and a content-addressed store.

A checkpoint is a plain JSON document — the same durability conventions as
the result store (:mod:`repro.service.store`): a ``format`` version stamped
into every envelope, atomic write-into-place, flock-guarded store access and
corrupt-file tolerance.  Two persistence surfaces share the format:

* :func:`save_checkpoint` / :func:`load_checkpoint` — one explicit file,
  the CLI's ``--checkpoint`` surface;
* :class:`CheckpointStore` — a content-addressed directory keyed by
  ``sha256(config, simulated time)``, built on the service layer's
  :class:`~repro.service.store.ResultStore` so budget-based eviction,
  locking and schema-mismatch handling are inherited, not re-implemented.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.service.store import ResultStore

#: Schema version of checkpoint envelopes.  Bump on any incompatible change
#: to the captured-state layout; loaders refuse other generations loudly
#: (a checkpoint silently misread as another schema would corrupt a run).
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """Base class of all checkpoint/restore failures."""


class CheckpointUnsupported(CheckpointError):
    """The simulation's current state cannot be captured natively.

    Raised by the capture layer when the configuration uses features outside
    the native snapshot's supported envelope (malleability, faults, GRAM
    jitter, background load) or when an unrecognised event is pending —
    always *before* anything is written, never as a silently partial file.
    """


class RestoreError(CheckpointError):
    """A checkpoint could not be turned back into a consistent run."""


def checkpoint_key(config_data: Dict[str, Any], time_hex: str) -> str:
    """Content address of a checkpoint: SHA-256 over config + capture time."""
    canonical = json.dumps(config_data, sort_keys=True, default=str)
    digest = hashlib.sha256()
    digest.update(canonical.encode("utf-8"))
    digest.update(b"|")
    digest.update(str(time_hex).encode("utf-8"))
    return digest.hexdigest()


def validate_envelope(data: Any) -> Dict[str, Any]:
    """Check that *data* is a checkpoint envelope of this schema generation."""
    if not isinstance(data, dict):
        raise RestoreError(f"checkpoint envelope must be a mapping, got {type(data).__name__}")
    fmt = data.get("format")
    if fmt != CHECKPOINT_FORMAT:
        raise RestoreError(
            f"checkpoint format {fmt!r} is not supported (expected {CHECKPOINT_FORMAT})"
        )
    for field in ("mode", "config", "time"):
        if field not in data:
            raise RestoreError(f"checkpoint envelope is missing the {field!r} field")
    return data


def save_checkpoint(data: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write *data* to *path* atomically (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a checkpoint file back, validating its schema generation."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise RestoreError(f"checkpoint file {path} does not exist") from None
    except (OSError, json.JSONDecodeError) as error:
        raise RestoreError(f"checkpoint file {path} is unreadable: {error}") from None
    return validate_envelope(data)


class CheckpointStore:
    """Content-addressed checkpoint directory.

    A thin typed wrapper over :class:`~repro.service.store.ResultStore`:
    checkpoints are keyed by ``(config, capture time)``, so periodic
    checkpointing of one long run files each boundary under its own key and
    re-running the same configuration overwrites (rather than duplicates)
    its checkpoints.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        budget_bytes: Optional[int] = None,
    ) -> None:
        self._store = ResultStore(directory, budget_bytes=budget_bytes)
        self.directory = self._store.directory

    def key_for(self, data: Dict[str, Any]) -> str:
        """The content address of the envelope *data*."""
        validate_envelope(data)
        return checkpoint_key(data["config"], data["time"])

    def save(self, data: Dict[str, Any]) -> str:
        """Persist the envelope; returns its key."""
        key = self.key_for(data)
        self._store.put(key, data)
        return key

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The envelope stored under *key* (``None`` on miss/corruption)."""
        record = self._store.get(key)
        if record is None:
            return None
        return validate_envelope(record)

    def path_for(self, key: str) -> Path:
        """Where the envelope for *key* lives on disk."""
        return self._store.path_for(key)

    def keys(self) -> List[str]:
        """Keys currently stored, sorted."""
        return sorted(self._store.keys())

    def clear(self) -> int:
        """Delete every stored checkpoint; returns how many were removed."""
        return self._store.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CheckpointStore at {str(self.directory)!r}>"
