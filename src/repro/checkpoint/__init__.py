"""Checkpointed simulation state and time-sharded exact replay.

Public surface of the checkpoint subsystem:

* envelopes and stores — :class:`CheckpointStore`, :func:`save_checkpoint`,
  :func:`load_checkpoint`, the :data:`CHECKPOINT_FORMAT` schema version and
  the :class:`CheckpointError` hierarchy;
* capture — :func:`capture_state` at a :func:`advance_to_safe_point` safe
  point, with :func:`native_unsupported_reason` describing the native
  envelope and :func:`kernel_fingerprint` / :func:`step_until` as the shared
  kernel-level primitives;
* restore — :func:`restore_run` / :func:`resume_run`, returning a live
  :class:`SimulationRun` that continues byte-identically;
* drivers — :class:`SimulationRun` construction and advancement,
  :func:`run_checkpointed` for resumable long runs with periodic metric
  flushes, and :func:`shard_replay` for parallel exact replay of huge
  bursty workloads.
"""

from repro.checkpoint.capture import (
    NATIVE_PLACEMENT_POLICIES,
    advance_to_safe_point,
    capture_state,
    kernel_fingerprint,
    native_unsupported_reason,
    step_until,
    workload_digest,
)
from repro.checkpoint.envelope import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointStore,
    CheckpointUnsupported,
    RestoreError,
    checkpoint_key,
    load_checkpoint,
    save_checkpoint,
    validate_envelope,
)
from repro.checkpoint.restore import restore_run, resume_run
from repro.checkpoint.runner import SimulationRun, run_checkpointed
from repro.checkpoint.shard import (
    DEFAULT_MIN_GAP,
    ShardReplayResult,
    ShardWindow,
    plan_windows,
    shard_bench_config,
    shard_replay,
    shard_replay_bench,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointUnsupported",
    "DEFAULT_MIN_GAP",
    "NATIVE_PLACEMENT_POLICIES",
    "RestoreError",
    "ShardReplayResult",
    "ShardWindow",
    "SimulationRun",
    "advance_to_safe_point",
    "capture_state",
    "checkpoint_key",
    "kernel_fingerprint",
    "load_checkpoint",
    "native_unsupported_reason",
    "plan_windows",
    "restore_run",
    "resume_run",
    "run_checkpointed",
    "save_checkpoint",
    "shard_bench_config",
    "shard_replay",
    "shard_replay_bench",
    "step_until",
    "validate_envelope",
    "workload_digest",
]
