"""The checkpoint layer's run object: construction, advancing, checkpointing.

:class:`SimulationRun` bundles every live object of one simulation run —
environment, streams, workload, multicluster, scheduler, submitter, optional
fault injector and optional streaming-metrics collector — so the capture and
restore layers can treat "a run" as one value.  :meth:`SimulationRun.fresh`
mirrors :func:`repro.experiments.setup.run_experiment`'s construction order
*exactly* (streams, environment, workload, system, injector, submitter):
replay-mode restore depends on a fresh run being bit-identical to the run
the checkpoint was captured from.

:func:`run_checkpointed` is the resumable-long-run driver: it advances the
simulation in checkpoint intervals, drains finished jobs into streaming
windowed metrics at every boundary (so memory stays flat at million-job
scale), and persists a native checkpoint per boundary.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.checkpoint.capture import (
    advance_to_safe_point,
    capture_state,
    step_until,
)
from repro.checkpoint.envelope import CheckpointStore, save_checkpoint
from repro.cluster.multicluster import Multicluster
from repro.experiments.setup import (
    ExperimentConfig,
    _profile_registry,
    build_system,
    build_workload,
)
from repro.koala.scheduler import KoalaScheduler
from repro.metrics.windowed import WindowedCollector, WindowedMetrics
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.workloads.spec import WorkloadSpec
from repro.workloads.submission import WorkloadSubmitter


@dataclass
class SimulationRun:
    """All live objects of one simulation run, as one value."""

    config: ExperimentConfig
    env: Environment
    streams: RandomStreams
    workload: WorkloadSpec
    multicluster: Multicluster
    scheduler: KoalaScheduler
    submitter: WorkloadSubmitter
    injector: Optional[object] = None
    collector: Optional[WindowedCollector] = None

    @classmethod
    def fresh(
        cls,
        config: ExperimentConfig,
        *,
        workload: Optional[WorkloadSpec] = None,
        retain_jobs: bool = True,
        collect_windowed: bool = False,
        scheduler_extra: Optional[Dict[str, object]] = None,
    ) -> "SimulationRun":
        """Build a run from scratch, mirroring ``run_experiment`` exactly.

        The construction order (streams, environment, workload, system,
        injector, submitter) is load-bearing: replay-mode restore re-runs a
        fresh instance and verifies it reaches the captured kernel state
        bit-for-bit, which only holds if event ids are allocated in the same
        order here as they were in the checkpointed run.
        """
        streams = RandomStreams(seed=config.seed)
        env = Environment()
        if workload is None:
            workload = build_workload(config, streams)
        multicluster, scheduler = build_system(
            config, env, streams, scheduler_extra=scheduler_extra
        )
        injector = None
        if config.fault_model is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(env, scheduler, config.fault_model, streams)
        submitter = WorkloadSubmitter(
            env,
            scheduler,
            workload,
            registry=_profile_registry(config),
            retain_jobs=retain_jobs,
        )
        collector = None
        if collect_windowed:
            collector = WindowedCollector()
            scheduler.hooks.subscribe(collector)
        return cls(
            config=config,
            env=env,
            streams=streams,
            workload=workload,
            multicluster=multicluster,
            scheduler=scheduler,
            submitter=submitter,
            injector=injector,
            collector=collector,
        )

    @property
    def done(self) -> bool:
        """Whether the workload is fully submitted and every job resolved."""
        return self.submitter.all_submitted.triggered and self.scheduler.all_done

    def run_to_completion(
        self,
        *,
        check_interval: float = 300.0,
        drain: bool = False,
    ) -> None:
        """Advance until the run is done or its time limit is reached.

        Chunked like ``run_experiment``'s loop (the KIS poll produces events
        forever, so completion must be re-checked periodically), but built on
        :func:`step_until` so no stop-event ids are consumed — a run advanced
        here stays checkpoint-comparable with one advanced by a restore.
        With ``drain=True``, finished jobs are evicted at every check so the
        resident set stays proportional to the in-flight working set (the
        caller is expected to collect metrics through a streaming window).
        """
        env = self.env
        limit = float(self.config.time_limit)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while not self.done:
                if env.now >= limit or env.peek() > limit:
                    break
                step_until(env, min(limit, max(env.now + check_interval, env.peek())))
                if drain:
                    self.scheduler.drain_finished()
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect(generation=0)


def run_checkpointed(
    config: ExperimentConfig,
    *,
    checkpoint_every: float,
    store: Optional[CheckpointStore] = None,
    path: Optional[Union[str, Path]] = None,
    workload: Optional[WorkloadSpec] = None,
    mode: str = "native",
    run: Optional[SimulationRun] = None,
) -> Dict[str, Any]:
    """Run *config* to completion, checkpointing every *checkpoint_every* s.

    Finished jobs are drained into a streaming
    :class:`~repro.metrics.windowed.WindowedMetrics` window at every
    checkpoint boundary, so the resident set stays flat however long the run
    is.  Checkpoints are persisted to *store* (content-addressed) and/or as
    numbered files derived from *path* (``path``'s stem gains a ``-NNNN``
    index per boundary); with neither, the envelopes are only returned.

    Pass a restored *run* (from :func:`repro.checkpoint.restore.restore_run`)
    to resume a previous invocation; its configuration must match *config*.

    Returns a summary dict: the merged window, completion flags, checkpoint
    keys/paths and the last envelope.
    """
    if checkpoint_every <= 0:
        raise ValueError("checkpoint_every must be positive")
    if run is None:
        run = SimulationRun.fresh(
            config, workload=workload, retain_jobs=False, collect_windowed=True
        )
    elif run.collector is None:
        raise ValueError("a resumed run must carry a windowed collector")
    env = run.env
    limit = float(config.time_limit)
    interval = float(checkpoint_every)
    boundary = env.now + interval
    keys: List[str] = []
    paths: List[str] = []
    last_envelope: Optional[Dict[str, Any]] = None
    path = Path(path) if path is not None else None
    file_index = 0
    captured = 0

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while not run.done:
            if env.now >= limit or env.peek() > limit:
                break
            step_until(env, min(boundary, limit))
            run.scheduler.drain_finished()
            if run.done or env.now >= limit:
                break
            advance_to_safe_point(run, limit=limit)
            run.scheduler.drain_finished()
            # The next boundary is one interval past the actual capture
            # instant (the safe point may lie well past the nominal one).
            boundary = env.now + interval
            if run.done:
                break
            last_envelope = capture_state(run, mode=mode)
            captured += 1
            if store is not None:
                keys.append(store.save(last_envelope))
            if path is not None:
                suffix = path.suffix or ".json"
                target = path.with_name(f"{path.stem}-{file_index:04d}{suffix}")
                save_checkpoint(last_envelope, target)
                paths.append(str(target))
                file_index += 1
        run.scheduler.drain_finished()
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect(generation=0)

    window = run.collector.window if run.collector is not None else WindowedMetrics()
    return {
        "config": config,
        "window": window,
        "all_done": run.done,
        "simulated_time": env.now,
        "events_processed": env.processed_events,
        "checkpoint_keys": keys,
        "checkpoint_paths": paths,
        "checkpoints": captured,
        "last_checkpoint": last_envelope,
        "run": run,
    }
