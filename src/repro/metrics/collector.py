"""Collecting the metrics of one experiment run.

:class:`ExperimentMetrics` is built from a finished scheduler run (scheduler,
multicluster and malleability manager) and exposes every quantity the paper's
figures plot, already in the right form:

* per-job metrics joined into :class:`JobMetrics` records,
* CDFs of average/maximum allocation and execution/response times
  (per application or combined),
* the system-wide utilization step function,
* the cumulative malleability-manager activity,
* and, when a fault model was configured, the resilience block: job kills,
  resubmissions, shrink-rescues, wasted work, the availability step function
  and availability-normalised utilization.  With faults disabled the block
  is entirely absent, so fault support is provably zero-drift for every
  existing metric consumer (golden snapshots, bench digests, the cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.runtime import ExecutionRecord
from repro.cluster.multicluster import Multicluster
from repro.koala.job import Job, JobKind
from repro.koala.scheduler import KoalaScheduler
from repro.metrics.cdf import EmpiricalCDF


@dataclass(frozen=True)
class JobMetrics:
    """Per-job quantities used by the evaluation figures."""

    name: str
    profile: str
    kind: str
    submit_time: float
    start_time: float
    finish_time: float
    average_allocation: float
    maximum_allocation: int
    grow_count: int
    shrink_count: int

    @property
    def execution_time(self) -> float:
        """Wall-clock execution time (start to finish)."""
        return self.finish_time - self.start_time

    @property
    def response_time(self) -> float:
        """Wall-clock response time (submit to finish)."""
        return self.finish_time - self.submit_time

    @property
    def wait_time(self) -> float:
        """Time spent waiting in the placement queue."""
        return self.start_time - self.submit_time

    @classmethod
    def from_record(cls, job: Job, record: ExecutionRecord) -> "JobMetrics":
        """Join a job description with its execution record."""
        return cls(
            name=job.name,
            profile=job.profile.name,
            kind=job.kind.value,
            submit_time=float(record.submit_time if record.submit_time is not None else 0.0),
            start_time=float(record.start_time if record.start_time is not None else 0.0),
            finish_time=float(record.finish_time if record.finish_time is not None else 0.0),
            average_allocation=record.average_allocation,
            maximum_allocation=record.maximum_allocation,
            grow_count=record.grow_count,
            shrink_count=record.shrink_count,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (native Python scalars only)."""
        return {
            "name": str(self.name),
            "profile": str(self.profile),
            "kind": str(self.kind),
            "submit_time": float(self.submit_time),
            "start_time": float(self.start_time),
            "finish_time": float(self.finish_time),
            "average_allocation": float(self.average_allocation),
            "maximum_allocation": int(self.maximum_allocation),
            "grow_count": int(self.grow_count),
            "shrink_count": int(self.shrink_count),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobMetrics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            profile=data["profile"],
            kind=data["kind"],
            submit_time=float(data["submit_time"]),
            start_time=float(data["start_time"]),
            finish_time=float(data["finish_time"]),
            average_allocation=float(data["average_allocation"]),
            maximum_allocation=int(data["maximum_allocation"]),
            grow_count=int(data["grow_count"]),
            shrink_count=int(data["shrink_count"]),
        )


def _step_integral(times, values, *, end: float) -> float:
    """Integral of a right-continuous step function over ``[0, end]``."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) == 0 or end <= times[0]:
        return 0.0
    inside = times < end
    times = np.append(times[inside], end)
    return float(np.sum(values[: len(times) - 1] * np.diff(times)))


class ExperimentMetrics:
    """All metrics of one finished experiment run."""

    def __init__(
        self,
        jobs: List[JobMetrics],
        *,
        utilization: Tuple[np.ndarray, np.ndarray],
        grow_activity: Tuple[np.ndarray, np.ndarray],
        shrink_activity: Tuple[np.ndarray, np.ndarray],
        unfinished_jobs: int = 0,
        label: str = "",
        resilience: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.jobs = list(jobs)
        self.utilization = utilization
        self.grow_activity = grow_activity
        self.shrink_activity = shrink_activity
        self.unfinished_jobs = int(unfinished_jobs)
        self.label = label
        #: Resilience block of a fault-injected run (``None`` without faults):
        #: scalar counters plus the ``"availability"`` step function, kept in
        #: JSON-compatible form so it round-trips byte-identically through
        #: the cache and worker subprocesses.
        self.resilience = resilience
        # Lazily built column arrays over the job records (see ``_columns``).
        self._columns_cache: Optional[Dict[str, np.ndarray]] = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_run(
        cls,
        scheduler: KoalaScheduler,
        multicluster: Multicluster,
        *,
        label: str = "",
        faults=None,
    ) -> "ExperimentMetrics":
        """Collect metrics from a finished (or stopped) scheduler run.

        *faults* is the run's :class:`~repro.faults.injector.FaultInjector`
        when fault injection was enabled; its counters become the resilience
        block, together with the availability step function and the
        availability-normalised utilization.
        """
        jobs = [
            JobMetrics.from_record(job, scheduler.records[job.job_id])
            for job in scheduler.finished
        ]
        manager = scheduler.manager
        if manager is not None:
            grow_activity = manager.grow_messages.cumulative()
            shrink_activity = manager.shrink_messages.cumulative()
        else:
            empty = (np.asarray([]), np.asarray([]))
            grow_activity, shrink_activity = empty, empty
        unfinished = (
            len(scheduler.running_jobs()) + scheduler.queue_length + len(scheduler.failed)
        )
        utilization = multicluster.utilization_series("grid")
        resilience: Optional[Dict[str, Any]] = None
        if faults is not None:
            availability = multicluster.availability_series()
            end = float(multicluster.env.now)
            used = _step_integral(*utilization, end=end)
            available = _step_integral(*availability, end=end)
            resilience = dict(faults.resilience_summary())
            resilience["availability"] = cls._series_to_dict(availability)
            # Utilization normalised by what was actually *up*: the fair
            # utilization figure of a run whose machine kept changing size.
            resilience["availability_normalized_utilization"] = float(
                used / available if available > 0 else 0.0
            )
        return cls(
            jobs,
            utilization=utilization,
            grow_activity=grow_activity,
            shrink_activity=shrink_activity,
            unfinished_jobs=unfinished,
            label=label,
            resilience=resilience,
        )

    # -- serialisation -----------------------------------------------------------

    @staticmethod
    def _series_to_dict(series: Tuple[np.ndarray, np.ndarray]) -> Dict[str, List[float]]:
        times, values = series
        return {
            "times": [float(t) for t in np.asarray(times).ravel()],
            "values": [float(v) for v in np.asarray(values).ravel()],
        }

    @staticmethod
    def _series_from_dict(data: Dict[str, List[float]]) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(data["times"], dtype=float),
            np.asarray(data["values"], dtype=float),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation of the full metrics object.

        The output contains only native Python scalars and lists, so
        ``json.dumps(metrics.to_dict(), sort_keys=True)`` is deterministic:
        two runs of the same configuration produce byte-identical dumps
        whether they ran in-process, in a worker subprocess, or were loaded
        back from the result cache.
        """
        data = {
            "label": str(self.label),
            "unfinished_jobs": int(self.unfinished_jobs),
            "jobs": [job.to_dict() for job in self.jobs],
            "utilization": self._series_to_dict(self.utilization),
            "grow_activity": self._series_to_dict(self.grow_activity),
            "shrink_activity": self._series_to_dict(self.shrink_activity),
        }
        if self.resilience is not None:
            # Present only for fault-injected runs: with faults disabled the
            # representation stays byte-identical to what it always was.
            data["resilience"] = self.resilience
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentMetrics":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            [JobMetrics.from_dict(job) for job in data["jobs"]],
            utilization=cls._series_from_dict(data["utilization"]),
            grow_activity=cls._series_from_dict(data["grow_activity"]),
            shrink_activity=cls._series_from_dict(data["shrink_activity"]),
            unfinished_jobs=int(data["unfinished_jobs"]),
            label=data["label"],
            resilience=data.get("resilience"),
        )

    # -- vectorised accumulation ---------------------------------------------------

    def _columns(self) -> Dict[str, np.ndarray]:
        """Per-job quantities accumulated into numpy columns, built once.

        All whole-population statistics (the summary and the no-selection CDFs)
        read these arrays instead of re-walking the job records, so metrics
        post-processing stays a small fraction of large runs.  The cache is
        invalidated if the job list changes length.
        """
        cache = self._columns_cache
        jobs = self.jobs
        if cache is None or len(cache["submit_time"]) != len(jobs):
            n = len(jobs)
            submit = np.fromiter((j.submit_time for j in jobs), dtype=float, count=n)
            start = np.fromiter((j.start_time for j in jobs), dtype=float, count=n)
            finish = np.fromiter((j.finish_time for j in jobs), dtype=float, count=n)
            cache = {
                "submit_time": submit,
                "start_time": start,
                "finish_time": finish,
                "execution_time": finish - start,
                "response_time": finish - submit,
                "wait_time": start - submit,
                "average_allocation": np.fromiter(
                    (j.average_allocation for j in jobs), dtype=float, count=n
                ),
                "maximum_allocation": np.fromiter(
                    (j.maximum_allocation for j in jobs), dtype=float, count=n
                ),
            }
            self._columns_cache = cache
        return cache

    # -- selection ---------------------------------------------------------------

    def select(
        self, *, profile: Optional[str] = None, kind: Optional[str] = None
    ) -> List[JobMetrics]:
        """Jobs filtered by application profile and/or job kind."""
        result = self.jobs
        if profile is not None:
            result = [job for job in result if job.profile == profile]
        if kind is not None:
            result = [job for job in result if job.kind == kind]
        return list(result)

    @property
    def job_count(self) -> int:
        """Number of finished jobs included in the metrics."""
        return len(self.jobs)

    @property
    def malleable_jobs(self) -> List[JobMetrics]:
        """The finished malleable jobs."""
        return self.select(kind=JobKind.MALLEABLE.value)

    # -- figure data ----------------------------------------------------------------

    def _cdf(self, column: str, selection: Dict[str, Any]) -> EmpiricalCDF:
        """CDF of one per-job quantity; whole-population reads use the columns."""
        if not selection:
            return EmpiricalCDF.from_values(self._columns()[column])
        return EmpiricalCDF.from_values(
            getattr(job, column) for job in self.select(**selection)
        )

    def average_allocation_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of the per-job time-averaged processor count (Figures 7(a)/8(a))."""
        return self._cdf("average_allocation", selection)

    def maximum_allocation_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of the per-job maximum processor count (Figures 7(b)/8(b))."""
        return self._cdf("maximum_allocation", selection)

    def execution_time_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of job execution times (Figures 7(c)/8(c))."""
        return self._cdf("execution_time", selection)

    def response_time_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of job response times (Figures 7(d)/8(d))."""
        return self._cdf("response_time", selection)

    def wait_time_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of job wait times (not plotted in the paper, useful for analysis)."""
        return self._cdf("wait_time", selection)

    def utilization_over(self, start: float, end: float, samples: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """Utilization sampled over ``[start, end]`` (Figures 7(e)/8(e))."""
        if end <= start:
            raise ValueError("end must be greater than start")
        times, values = self.utilization
        if len(times) == 0:
            xs = np.linspace(start, end, samples)
            return xs, np.zeros_like(xs)
        xs = np.linspace(start, end, samples)
        indices = np.searchsorted(times, xs, side="right") - 1
        ys = np.where(indices >= 0, values[np.clip(indices, 0, len(values) - 1)], 0.0)
        return xs, ys

    def mean_utilization(self, start: float, end: float) -> float:
        """Time-averaged number of busy processors over ``[start, end]``."""
        xs, ys = self.utilization_over(start, end, samples=2000)
        return float(np.mean(ys))

    def peak_utilization(self) -> float:
        """Largest number of processors used simultaneously by grid jobs."""
        _, values = self.utilization
        return float(values.max()) if len(values) else 0.0

    def cumulative_grow_messages(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative grow messages over time (Figure 7(f))."""
        return self.grow_activity

    def cumulative_operations(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative malleability operations (grow + shrink) over time (Figure 8(f))."""
        g_times, g_counts = self.grow_activity
        s_times, s_counts = self.shrink_activity
        if len(g_times) == 0 and len(s_times) == 0:
            return np.asarray([]), np.asarray([])
        # Vectorised merge: a stable sort keeps simultaneous grow/shrink
        # events in the same (grow-first) order the list-based merge used.
        times = np.sort(
            np.concatenate([np.asarray(g_times, dtype=float), np.asarray(s_times, dtype=float)]),
            kind="stable",
        )
        counts = np.arange(1, len(times) + 1, dtype=float)
        return times, counts

    @property
    def total_grow_messages(self) -> int:
        """Total number of grow messages sent during the run."""
        _, counts = self.grow_activity
        return int(counts[-1]) if len(counts) else 0

    @property
    def total_shrink_messages(self) -> int:
        """Total number of shrink messages sent during the run."""
        _, counts = self.shrink_activity
        return int(counts[-1]) if len(counts) else 0

    # -- summary -------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Headline statistics of the run (used by reports and benchmarks).

        For fault-injected runs the resilience scalars (job kills,
        resubmissions, shrink-rescues, wasted work, availability-normalised
        utilization, ...) join the summary; without a fault model the key set
        is exactly the historical one.
        """
        if not self.jobs:
            result = {
                "jobs": 0,
                "unfinished": float(self.unfinished_jobs),
                "mean_execution_time": float("nan"),
                "mean_response_time": float("nan"),
                "mean_average_allocation": float("nan"),
                "mean_maximum_allocation": float("nan"),
                "grow_messages": float(self.total_grow_messages),
                "shrink_messages": float(self.total_shrink_messages),
                "peak_utilization": self.peak_utilization(),
            }
        else:
            columns = self._columns()
            result = {
                "jobs": float(len(self.jobs)),
                "unfinished": float(self.unfinished_jobs),
                "mean_execution_time": float(np.mean(columns["execution_time"])),
                "mean_response_time": float(np.mean(columns["response_time"])),
                "median_execution_time": float(np.median(columns["execution_time"])),
                "median_response_time": float(np.median(columns["response_time"])),
                "mean_average_allocation": float(np.mean(columns["average_allocation"])),
                "mean_maximum_allocation": float(np.mean(columns["maximum_allocation"])),
                "grow_messages": float(self.total_grow_messages),
                "shrink_messages": float(self.total_shrink_messages),
                "peak_utilization": self.peak_utilization(),
            }
        if self.resilience is not None:
            for key, value in self.resilience.items():
                if isinstance(value, (int, float)):
                    result[key] = float(value)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ExperimentMetrics {self.label!r}: {len(self.jobs)} jobs>"
