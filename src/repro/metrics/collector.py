"""Collecting the metrics of one experiment run.

:class:`ExperimentMetrics` is built from a finished scheduler run (scheduler,
multicluster and malleability manager) and exposes every quantity the paper's
figures plot, already in the right form:

* per-job metrics joined into :class:`JobMetrics` records,
* CDFs of average/maximum allocation and execution/response times
  (per application or combined),
* the system-wide utilization step function,
* the cumulative malleability-manager activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.runtime import ExecutionRecord
from repro.cluster.multicluster import Multicluster
from repro.koala.job import Job, JobKind
from repro.koala.scheduler import KoalaScheduler
from repro.metrics.cdf import EmpiricalCDF


@dataclass(frozen=True)
class JobMetrics:
    """Per-job quantities used by the evaluation figures."""

    name: str
    profile: str
    kind: str
    submit_time: float
    start_time: float
    finish_time: float
    average_allocation: float
    maximum_allocation: int
    grow_count: int
    shrink_count: int

    @property
    def execution_time(self) -> float:
        """Wall-clock execution time (start to finish)."""
        return self.finish_time - self.start_time

    @property
    def response_time(self) -> float:
        """Wall-clock response time (submit to finish)."""
        return self.finish_time - self.submit_time

    @property
    def wait_time(self) -> float:
        """Time spent waiting in the placement queue."""
        return self.start_time - self.submit_time

    @classmethod
    def from_record(cls, job: Job, record: ExecutionRecord) -> "JobMetrics":
        """Join a job description with its execution record."""
        return cls(
            name=job.name,
            profile=job.profile.name,
            kind=job.kind.value,
            submit_time=float(record.submit_time if record.submit_time is not None else 0.0),
            start_time=float(record.start_time if record.start_time is not None else 0.0),
            finish_time=float(record.finish_time if record.finish_time is not None else 0.0),
            average_allocation=record.average_allocation,
            maximum_allocation=record.maximum_allocation,
            grow_count=record.grow_count,
            shrink_count=record.shrink_count,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (native Python scalars only)."""
        return {
            "name": str(self.name),
            "profile": str(self.profile),
            "kind": str(self.kind),
            "submit_time": float(self.submit_time),
            "start_time": float(self.start_time),
            "finish_time": float(self.finish_time),
            "average_allocation": float(self.average_allocation),
            "maximum_allocation": int(self.maximum_allocation),
            "grow_count": int(self.grow_count),
            "shrink_count": int(self.shrink_count),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobMetrics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            profile=data["profile"],
            kind=data["kind"],
            submit_time=float(data["submit_time"]),
            start_time=float(data["start_time"]),
            finish_time=float(data["finish_time"]),
            average_allocation=float(data["average_allocation"]),
            maximum_allocation=int(data["maximum_allocation"]),
            grow_count=int(data["grow_count"]),
            shrink_count=int(data["shrink_count"]),
        )


class ExperimentMetrics:
    """All metrics of one finished experiment run."""

    def __init__(
        self,
        jobs: List[JobMetrics],
        *,
        utilization: Tuple[np.ndarray, np.ndarray],
        grow_activity: Tuple[np.ndarray, np.ndarray],
        shrink_activity: Tuple[np.ndarray, np.ndarray],
        unfinished_jobs: int = 0,
        label: str = "",
    ) -> None:
        self.jobs = list(jobs)
        self.utilization = utilization
        self.grow_activity = grow_activity
        self.shrink_activity = shrink_activity
        self.unfinished_jobs = int(unfinished_jobs)
        self.label = label

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_run(
        cls,
        scheduler: KoalaScheduler,
        multicluster: Multicluster,
        *,
        label: str = "",
    ) -> "ExperimentMetrics":
        """Collect metrics from a finished (or stopped) scheduler run."""
        jobs = [
            JobMetrics.from_record(job, scheduler.records[job.job_id])
            for job in scheduler.finished
        ]
        manager = scheduler.manager
        if manager is not None:
            grow_activity = manager.grow_messages.cumulative()
            shrink_activity = manager.shrink_messages.cumulative()
        else:
            empty = (np.asarray([]), np.asarray([]))
            grow_activity, shrink_activity = empty, empty
        unfinished = (
            len(scheduler.running_jobs()) + scheduler.queue_length + len(scheduler.failed)
        )
        return cls(
            jobs,
            utilization=multicluster.utilization_series("grid"),
            grow_activity=grow_activity,
            shrink_activity=shrink_activity,
            unfinished_jobs=unfinished,
            label=label,
        )

    # -- serialisation -----------------------------------------------------------

    @staticmethod
    def _series_to_dict(series: Tuple[np.ndarray, np.ndarray]) -> Dict[str, List[float]]:
        times, values = series
        return {
            "times": [float(t) for t in np.asarray(times).ravel()],
            "values": [float(v) for v in np.asarray(values).ravel()],
        }

    @staticmethod
    def _series_from_dict(data: Dict[str, List[float]]) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(data["times"], dtype=float),
            np.asarray(data["values"], dtype=float),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation of the full metrics object.

        The output contains only native Python scalars and lists, so
        ``json.dumps(metrics.to_dict(), sort_keys=True)`` is deterministic:
        two runs of the same configuration produce byte-identical dumps
        whether they ran in-process, in a worker subprocess, or were loaded
        back from the result cache.
        """
        return {
            "label": str(self.label),
            "unfinished_jobs": int(self.unfinished_jobs),
            "jobs": [job.to_dict() for job in self.jobs],
            "utilization": self._series_to_dict(self.utilization),
            "grow_activity": self._series_to_dict(self.grow_activity),
            "shrink_activity": self._series_to_dict(self.shrink_activity),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentMetrics":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            [JobMetrics.from_dict(job) for job in data["jobs"]],
            utilization=cls._series_from_dict(data["utilization"]),
            grow_activity=cls._series_from_dict(data["grow_activity"]),
            shrink_activity=cls._series_from_dict(data["shrink_activity"]),
            unfinished_jobs=int(data["unfinished_jobs"]),
            label=data["label"],
        )

    # -- selection ---------------------------------------------------------------

    def select(
        self, *, profile: Optional[str] = None, kind: Optional[str] = None
    ) -> List[JobMetrics]:
        """Jobs filtered by application profile and/or job kind."""
        result = self.jobs
        if profile is not None:
            result = [job for job in result if job.profile == profile]
        if kind is not None:
            result = [job for job in result if job.kind == kind]
        return list(result)

    @property
    def job_count(self) -> int:
        """Number of finished jobs included in the metrics."""
        return len(self.jobs)

    @property
    def malleable_jobs(self) -> List[JobMetrics]:
        """The finished malleable jobs."""
        return self.select(kind=JobKind.MALLEABLE.value)

    # -- figure data ----------------------------------------------------------------

    def average_allocation_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of the per-job time-averaged processor count (Figures 7(a)/8(a))."""
        return EmpiricalCDF.from_values(
            job.average_allocation for job in self.select(**selection)
        )

    def maximum_allocation_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of the per-job maximum processor count (Figures 7(b)/8(b))."""
        return EmpiricalCDF.from_values(
            job.maximum_allocation for job in self.select(**selection)
        )

    def execution_time_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of job execution times (Figures 7(c)/8(c))."""
        return EmpiricalCDF.from_values(job.execution_time for job in self.select(**selection))

    def response_time_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of job response times (Figures 7(d)/8(d))."""
        return EmpiricalCDF.from_values(job.response_time for job in self.select(**selection))

    def wait_time_cdf(self, **selection) -> EmpiricalCDF:
        """CDF of job wait times (not plotted in the paper, useful for analysis)."""
        return EmpiricalCDF.from_values(job.wait_time for job in self.select(**selection))

    def utilization_over(self, start: float, end: float, samples: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """Utilization sampled over ``[start, end]`` (Figures 7(e)/8(e))."""
        if end <= start:
            raise ValueError("end must be greater than start")
        times, values = self.utilization
        if len(times) == 0:
            xs = np.linspace(start, end, samples)
            return xs, np.zeros_like(xs)
        xs = np.linspace(start, end, samples)
        indices = np.searchsorted(times, xs, side="right") - 1
        ys = np.where(indices >= 0, values[np.clip(indices, 0, len(values) - 1)], 0.0)
        return xs, ys

    def mean_utilization(self, start: float, end: float) -> float:
        """Time-averaged number of busy processors over ``[start, end]``."""
        xs, ys = self.utilization_over(start, end, samples=2000)
        return float(np.mean(ys))

    def peak_utilization(self) -> float:
        """Largest number of processors used simultaneously by grid jobs."""
        _, values = self.utilization
        return float(values.max()) if len(values) else 0.0

    def cumulative_grow_messages(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative grow messages over time (Figure 7(f))."""
        return self.grow_activity

    def cumulative_operations(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative malleability operations (grow + shrink) over time (Figure 8(f))."""
        g_times, g_counts = self.grow_activity
        s_times, s_counts = self.shrink_activity
        if len(g_times) == 0 and len(s_times) == 0:
            return np.asarray([]), np.asarray([])
        events = sorted(
            [(t, 1) for t in g_times] + [(t, 1) for t in s_times], key=lambda pair: pair[0]
        )
        times = np.asarray([t for t, _ in events])
        counts = np.cumsum([c for _, c in events]).astype(float)
        return times, counts

    @property
    def total_grow_messages(self) -> int:
        """Total number of grow messages sent during the run."""
        _, counts = self.grow_activity
        return int(counts[-1]) if len(counts) else 0

    @property
    def total_shrink_messages(self) -> int:
        """Total number of shrink messages sent during the run."""
        _, counts = self.shrink_activity
        return int(counts[-1]) if len(counts) else 0

    # -- summary -------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Headline statistics of the run (used by reports and benchmarks)."""
        if not self.jobs:
            return {
                "jobs": 0,
                "unfinished": float(self.unfinished_jobs),
                "mean_execution_time": float("nan"),
                "mean_response_time": float("nan"),
                "mean_average_allocation": float("nan"),
                "mean_maximum_allocation": float("nan"),
                "grow_messages": float(self.total_grow_messages),
                "shrink_messages": float(self.total_shrink_messages),
                "peak_utilization": self.peak_utilization(),
            }
        return {
            "jobs": float(len(self.jobs)),
            "unfinished": float(self.unfinished_jobs),
            "mean_execution_time": float(np.mean([j.execution_time for j in self.jobs])),
            "mean_response_time": float(np.mean([j.response_time for j in self.jobs])),
            "median_execution_time": float(np.median([j.execution_time for j in self.jobs])),
            "median_response_time": float(np.median([j.response_time for j in self.jobs])),
            "mean_average_allocation": float(np.mean([j.average_allocation for j in self.jobs])),
            "mean_maximum_allocation": float(np.mean([j.maximum_allocation for j in self.jobs])),
            "grow_messages": float(self.total_grow_messages),
            "shrink_messages": float(self.total_shrink_messages),
            "peak_utilization": self.peak_utilization(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ExperimentMetrics {self.label!r}: {len(self.jobs)} jobs>"
