"""Streaming, mergeable metrics for runs too large to materialise per-job.

:class:`~repro.metrics.collector.ExperimentMetrics` keeps every
:class:`~repro.metrics.collector.JobMetrics` record and builds numpy columns
over them — the right trade for the paper's 300-job workloads, but at half a
million jobs the retained records dominate the resident set.
:class:`WindowedMetrics` is the streaming alternative: a fixed-size
accumulator of counts, sums and extrema that

* is fed one completion at a time (hook-subscribed through
  :class:`WindowedCollector`, so the scheduler needs no changes),
* **merges** associatively and commutatively — shard replays and resumed
  runs combine their windows in any order and land on the same totals, and
* carries an order-independent *completion digest* over the exact per-job
  tuples, so "the sharded replay produced exactly the jobs of the serial
  run" is a single equality check, not a statistical argument.

The digest is the sum modulo 2**256 of the SHA-256 of each completion's
canonical tuple: commutative (addition), collision-resistant in practice,
and cheap enough to pay per job.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from math import inf
from typing import Any, Dict, Optional

_DIGEST_MODULUS = 1 << 256


def _completion_hash(
    name: str,
    submit_time: float,
    start_time: float,
    finish_time: float,
    maximum_allocation: int,
) -> int:
    """SHA-256 (as an int) of one completion's canonical tuple.

    Times go in through ``float.hex`` — byte-identical means *bit*-identical
    here, which is the whole point of the checkpoint/shard equivalence
    checks; a rounded representation would hide exactly the drifts this
    digest exists to catch.
    """
    text = (
        f"{name}|{float(submit_time).hex()}|{float(start_time).hex()}"
        f"|{float(finish_time).hex()}|{int(maximum_allocation)}"
    )
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest(), "big")


@dataclass
class WindowedMetrics:
    """Mergeable streaming accumulator of per-job completion metrics."""

    jobs: int = 0
    failed: int = 0
    sum_wait: float = 0.0
    sum_execution: float = 0.0
    sum_response: float = 0.0
    sum_average_allocation: float = 0.0
    grow_count: int = 0
    shrink_count: int = 0
    max_allocation: int = 0
    first_submit: float = inf
    last_finish: float = -inf
    #: Commutative completion digest (int mod 2**256).
    digest_acc: int = field(default=0, repr=False)

    # -- accumulation ------------------------------------------------------

    def add_completion(
        self,
        name: str,
        *,
        submit_time: float,
        start_time: float,
        finish_time: float,
        average_allocation: float,
        maximum_allocation: int,
        grow_count: int = 0,
        shrink_count: int = 0,
    ) -> None:
        """Fold one finished job into the window.

        The interval invariants are validated *before* any field mutates:
        a record with ``start_time < submit_time`` (a negative wait) or
        ``finish_time < start_time`` (a negative execution) raises
        :class:`ValueError` and leaves the window untouched.  The window is
        the substrate of every downstream statistic — the stats layer must
        never average garbage, and a silently folded negative wait is
        exactly the kind of garbage that survives into a mean unnoticed.
        """
        if start_time < submit_time:
            raise ValueError(
                f"job {name!r} has start_time {start_time!r} earlier than "
                f"submit_time {submit_time!r} (negative wait time)"
            )
        if finish_time < start_time:
            raise ValueError(
                f"job {name!r} has finish_time {finish_time!r} earlier than "
                f"start_time {start_time!r} (negative execution time)"
            )
        self.jobs += 1
        self.sum_wait += start_time - submit_time
        self.sum_execution += finish_time - start_time
        self.sum_response += finish_time - submit_time
        self.sum_average_allocation += average_allocation
        self.grow_count += int(grow_count)
        self.shrink_count += int(shrink_count)
        if maximum_allocation > self.max_allocation:
            self.max_allocation = int(maximum_allocation)
        if submit_time < self.first_submit:
            self.first_submit = float(submit_time)
        if finish_time > self.last_finish:
            self.last_finish = float(finish_time)
        self.digest_acc = (
            self.digest_acc
            + _completion_hash(
                name, submit_time, start_time, finish_time, maximum_allocation
            )
        ) % _DIGEST_MODULUS

    def add_record(self, job, record) -> None:
        """Fold one :class:`~repro.apps.runtime.ExecutionRecord` in."""
        self.add_completion(
            job.name,
            submit_time=float(record.submit_time or 0.0),
            start_time=float(record.start_time or 0.0),
            finish_time=float(record.finish_time or 0.0),
            average_allocation=float(record.average_allocation),
            maximum_allocation=int(record.maximum_allocation),
            grow_count=int(record.grow_count),
            shrink_count=int(record.shrink_count),
        )

    def add_failure(self) -> None:
        """Count one job that left the system without finishing."""
        self.failed += 1

    # -- merging -----------------------------------------------------------

    def merge(self, other: "WindowedMetrics") -> "WindowedMetrics":
        """Fold *other* into this window (in place; returns self).

        Associative and commutative: every grouping and order of merges
        over the same set of completions produces identical fields.
        """
        self.jobs += other.jobs
        self.failed += other.failed
        self.sum_wait += other.sum_wait
        self.sum_execution += other.sum_execution
        self.sum_response += other.sum_response
        self.sum_average_allocation += other.sum_average_allocation
        self.grow_count += other.grow_count
        self.shrink_count += other.shrink_count
        self.max_allocation = max(self.max_allocation, other.max_allocation)
        self.first_submit = min(self.first_submit, other.first_submit)
        self.last_finish = max(self.last_finish, other.last_finish)
        self.digest_acc = (self.digest_acc + other.digest_acc) % _DIGEST_MODULUS
        return self

    # -- reporting ---------------------------------------------------------

    @property
    def digest(self) -> str:
        """Hex form of the commutative completion digest."""
        return f"{self.digest_acc:064x}"

    def summary(self) -> Dict[str, float]:
        """Headline means and horizons (empty window: all zeros)."""
        count = self.jobs or 1
        return {
            "jobs": float(self.jobs),
            "failed": float(self.failed),
            "mean_wait_time": self.sum_wait / count,
            "mean_execution_time": self.sum_execution / count,
            "mean_response_time": self.sum_response / count,
            "mean_average_allocation": self.sum_average_allocation / count,
            "max_allocation": float(self.max_allocation),
            "first_submit_time": 0.0 if self.jobs == 0 else self.first_submit,
            "last_finish_time": 0.0 if self.jobs == 0 else self.last_finish,
            "grow_count": float(self.grow_count),
            "shrink_count": float(self.shrink_count),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (exact: floats via ``hex``)."""
        return {
            "jobs": self.jobs,
            "failed": self.failed,
            "sum_wait": self.sum_wait.hex(),
            "sum_execution": self.sum_execution.hex(),
            "sum_response": self.sum_response.hex(),
            "sum_average_allocation": self.sum_average_allocation.hex(),
            "grow_count": self.grow_count,
            "shrink_count": self.shrink_count,
            "max_allocation": self.max_allocation,
            "first_submit": self.first_submit.hex(),
            "last_finish": self.last_finish.hex(),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WindowedMetrics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            jobs=int(data["jobs"]),
            failed=int(data["failed"]),
            sum_wait=float.fromhex(data["sum_wait"]),
            sum_execution=float.fromhex(data["sum_execution"]),
            sum_response=float.fromhex(data["sum_response"]),
            sum_average_allocation=float.fromhex(data["sum_average_allocation"]),
            grow_count=int(data["grow_count"]),
            shrink_count=int(data["shrink_count"]),
            max_allocation=int(data["max_allocation"]),
            first_submit=float.fromhex(data["first_submit"]),
            last_finish=float.fromhex(data["last_finish"]),
            digest_acc=int(data["digest"], 16),
        )


class WindowedCollector:
    """Hook subscriber feeding a :class:`WindowedMetrics` as jobs end.

    Subscribe with ``scheduler.hooks.subscribe(collector)``; only the
    ``on_job_ended`` hook is implemented, so the collector adds one method
    call per completed job and nothing per event.
    """

    def __init__(self, window: Optional[WindowedMetrics] = None) -> None:
        self.window = window if window is not None else WindowedMetrics()

    def on_job_ended(self, event, scheduler) -> None:
        if event.failed or event.record is None:
            self.window.add_failure()
        else:
            self.window.add_record(event.job, event.record)
