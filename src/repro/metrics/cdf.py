"""Empirical cumulative distribution functions.

All of the paper's per-job results are presented as CDFs ("cumulative number
of jobs (%)" against a metric).  :class:`EmpiricalCDF` is a small, dependency
light implementation with exactly the operations the figures and their
regression tests need: evaluation at arbitrary points, percentiles/medians,
and export of plot-ready step points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmpiricalCDF:
    """The empirical distribution of a sample of values."""

    values: Tuple[float, ...]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "EmpiricalCDF":
        """Build a CDF from any iterable of numbers."""
        cleaned = tuple(sorted(float(v) for v in values))
        return cls(values=cleaned)

    def __post_init__(self) -> None:
        if list(self.values) != sorted(self.values):
            object.__setattr__(self, "values", tuple(sorted(self.values)))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def empty(self) -> bool:
        """Whether the sample is empty."""
        return not self.values

    # -- evaluation -----------------------------------------------------------

    def fraction_at_or_below(self, x: float) -> float:
        """F(x): fraction of values that are <= *x* (0 for an empty sample)."""
        if not self.values:
            return 0.0
        idx = int(np.searchsorted(np.asarray(self.values), x, side="right"))
        return idx / len(self.values)

    def percent_at_or_below(self, x: float) -> float:
        """F(x) expressed in percent, as plotted in the paper's figures."""
        return 100.0 * self.fraction_at_or_below(x)

    def percentile(self, q: float) -> float:
        """The *q*-th percentile of the sample (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must lie in [0, 100]")
        if not self.values:
            raise ValueError("cannot take a percentile of an empty sample")
        return float(np.percentile(np.asarray(self.values), q))

    @property
    def median(self) -> float:
        """The median of the sample."""
        return self.percentile(50.0)

    @property
    def mean(self) -> float:
        """The mean of the sample."""
        if not self.values:
            raise ValueError("cannot take the mean of an empty sample")
        return float(np.mean(np.asarray(self.values)))

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        if not self.values:
            raise ValueError("empty sample")
        return self.values[0]

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        if not self.values:
            raise ValueError("empty sample")
        return self.values[-1]

    # -- export ---------------------------------------------------------------

    def step_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """Plot-ready points ``(x, percent of jobs <= x)``, one per observation."""
        if not self.values:
            return np.asarray([]), np.asarray([])
        xs = np.asarray(self.values, dtype=float)
        ys = 100.0 * np.arange(1, len(xs) + 1) / len(xs)
        return xs, ys

    def sampled(self, xs: Sequence[float]) -> List[float]:
        """Percent of jobs at or below each of *xs* (for table rendering)."""
        return [self.percent_at_or_below(x) for x in xs]

    def dominates(self, other: "EmpiricalCDF", at: Sequence[float]) -> bool:
        """Whether this CDF lies at or above *other* at every probe point.

        "Lies above" means a larger fraction of jobs has values at or below
        the probe — i.e. for metrics where smaller is better (execution time,
        response time), the dominating distribution is the better one.
        """
        return all(
            self.fraction_at_or_below(x) >= other.fraction_at_or_below(x) for x in at
        )


def cdf_points(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: plot-ready CDF points of *values*."""
    return EmpiricalCDF.from_values(values).step_points()


def fraction_at_or_below(values: Iterable[float], x: float) -> float:
    """Convenience wrapper: F(x) of *values*."""
    return EmpiricalCDF.from_values(values).fraction_at_or_below(x)


def percentile(values: Iterable[float], q: float) -> float:
    """Convenience wrapper: the *q*-th percentile of *values*."""
    return EmpiricalCDF.from_values(values).percentile(q)
