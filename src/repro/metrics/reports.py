"""Plain-text and CSV reports of experiment results.

The benchmark harness regenerates each of the paper's figures as a table of
series (one column per policy/workload combination), printed as aligned text
so the qualitative comparisons — who wins, where the curves sit — can be read
straight from the benchmark output.  CSV export allows plotting with any
external tool.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.metrics.collector import ExperimentMetrics


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned text table."""
    rendered_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def summary_table(metrics_by_label: Mapping[str, ExperimentMetrics], *, title: str = "") -> str:
    """One row of headline statistics per experiment configuration."""
    headers = [
        "configuration",
        "jobs",
        "mean exec (s)",
        "mean resp (s)",
        "mean avg procs",
        "mean max procs",
        "grow msgs",
        "shrink msgs",
        "peak util",
    ]
    rows = []
    for label, metrics in metrics_by_label.items():
        summary = metrics.summary()
        rows.append(
            [
                label,
                int(summary["jobs"]),
                summary.get("mean_execution_time", float("nan")),
                summary.get("mean_response_time", float("nan")),
                summary.get("mean_average_allocation", float("nan")),
                summary.get("mean_maximum_allocation", float("nan")),
                int(summary["grow_messages"]),
                int(summary["shrink_messages"]),
                summary["peak_utilization"],
            ]
        )
    return format_table(headers, rows, title=title)


def comparison_table(
    series_by_label: Mapping[str, Sequence[float]],
    probes: Sequence[float],
    *,
    title: str = "",
    probe_header: str = "x",
) -> str:
    """Render several series sampled at the same probe points side by side.

    This is the text analogue of overlaying several CDFs in one plot: each
    row is a probe point, each column one policy/workload combination.
    """
    headers = [probe_header] + list(series_by_label.keys())
    rows = []
    for index, probe in enumerate(probes):
        row: List[object] = [probe]
        for label in series_by_label:
            series = series_by_label[label]
            row.append(series[index] if index < len(series) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def metrics_to_csv(metrics: ExperimentMetrics) -> str:
    """Per-job CSV export of one experiment run."""
    buffer = io.StringIO()
    buffer.write(
        "name,profile,kind,submit_time,start_time,finish_time,"
        "execution_time,response_time,average_allocation,maximum_allocation,"
        "grow_count,shrink_count\n"
    )
    for job in metrics.jobs:
        buffer.write(
            f"{job.name},{job.profile},{job.kind},{job.submit_time:.3f},"
            f"{job.start_time:.3f},{job.finish_time:.3f},{job.execution_time:.3f},"
            f"{job.response_time:.3f},{job.average_allocation:.3f},"
            f"{job.maximum_allocation},{job.grow_count},{job.shrink_count}\n"
        )
    return buffer.getvalue()


def activity_csv(metrics_by_label: Mapping[str, ExperimentMetrics]) -> str:
    """CSV of cumulative malleability activity per configuration."""
    buffer = io.StringIO()
    buffer.write("configuration,time,cumulative_operations\n")
    for label, metrics in metrics_by_label.items():
        times, counts = metrics.cumulative_operations()
        for time, count in zip(times, counts):
            buffer.write(f"{label},{time:.3f},{count:.0f}\n")
    return buffer.getvalue()


def utilization_csv(
    metrics_by_label: Mapping[str, ExperimentMetrics], start: float, end: float, samples: int = 100
) -> str:
    """CSV of the utilization curves of several configurations."""
    buffer = io.StringIO()
    buffer.write("configuration,time,busy_processors\n")
    for label, metrics in metrics_by_label.items():
        times, values = metrics.utilization_over(start, end, samples=samples)
        for time, value in zip(times, values):
            buffer.write(f"{label},{time:.3f},{value:.1f}\n")
    return buffer.getvalue()


def cdf_probe_table(
    metrics_by_label: Mapping[str, ExperimentMetrics],
    metric: str,
    probes: Sequence[float],
    *,
    title: str = "",
) -> str:
    """Probe several runs' CDF of *metric* at the same points.

    *metric* is one of ``"average_allocation"``, ``"maximum_allocation"``,
    ``"execution_time"``, ``"response_time"``.
    """
    accessor = {
        "average_allocation": lambda m: m.average_allocation_cdf(),
        "maximum_allocation": lambda m: m.maximum_allocation_cdf(),
        "execution_time": lambda m: m.execution_time_cdf(),
        "response_time": lambda m: m.response_time_cdf(),
    }
    try:
        getter = accessor[metric]
    except KeyError:
        raise ValueError(f"unknown metric {metric!r}; known: {sorted(accessor)}") from None
    series: Dict[str, List[float]] = {}
    for label, metrics in metrics_by_label.items():
        cdf = getter(metrics)
        series[label] = cdf.sampled(probes) if not cdf.empty else [float("nan")] * len(probes)
    return comparison_table(series, probes, title=title, probe_header=metric)
