"""Plain-text plotting helpers.

The evaluation figures of the paper are line plots (CDFs, utilization over
time, cumulative activity).  This reproduction runs in terminal-only
environments, so the report layer can render small ASCII plots next to the
numeric tables: enough to *see* which curve sits above which, which is all
the qualitative comparison needs.

Only standard characters are used so the output survives logs, CI consoles
and ``pytest -s`` captures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Characters used to distinguish the series of one plot, in legend order.
SERIES_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    """Map *value* in ``[low, high]`` onto an integer cell index in ``[0, steps-1]``."""
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return int(round(fraction * (steps - 1)))


def ascii_plot(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render several ``(x, y)`` series as one ASCII plot.

    Parameters
    ----------
    series:
        Mapping from legend label to ``(xs, ys)`` pairs.  Series may have
        different lengths; empty series are skipped.
    width, height:
        Plot area size in character cells (excluding axes and legend).
    title, x_label, y_label:
        Optional decorations.
    """
    if width < 8 or height < 4:
        raise ValueError("the plot area must be at least 8x4 characters")
    populated = {
        label: (np.asarray(xs, dtype=float), np.asarray(ys, dtype=float))
        for label, (xs, ys) in series.items()
        if len(xs) and len(ys)
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    if not populated:
        lines.append("(no data)")
        return "\n".join(lines)

    x_min = min(float(xs.min()) for xs, _ in populated.values())
    x_max = max(float(xs.max()) for xs, _ in populated.values())
    y_min = min(float(ys.min()) for _, ys in populated.values())
    y_max = max(float(ys.max()) for _, ys in populated.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(populated.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        for x, y in zip(xs, ys):
            column = _scale(float(x), x_min, x_max, width)
            row = height - 1 - _scale(float(y), y_min, y_max, height)
            grid[row][column] = marker

    y_labels = [f"{y_max:9.1f}"] + ["         "] * (height - 2) + [f"{y_min:9.1f}"]
    for row_index, row in enumerate(grid):
        lines.append(f"{y_labels[row_index]} |{''.join(row)}|")
    lines.append(" " * 10 + "-" * (width + 2))
    x_axis = f"{x_min:<12.1f}{x_label:^{max(0, width - 24)}}{x_max:>12.1f}"
    lines.append(" " * 10 + x_axis)
    if y_label:
        lines.append(f"(y: {y_label})")
    legend = "   ".join(
        f"{SERIES_MARKERS[i % len(SERIES_MARKERS)]} {label}"
        for i, label in enumerate(populated)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def cdf_plot(
    cdfs: Mapping[str, "object"],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
) -> str:
    """Render several :class:`~repro.metrics.cdf.EmpiricalCDF` objects.

    The y axis is the cumulative percentage of jobs, exactly as in the
    paper's figures.
    """
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {}
    for label, cdf in cdfs.items():
        xs, ys = cdf.step_points()
        series[label] = (xs, ys)
    return ascii_plot(
        series,
        width=width,
        height=height,
        title=title,
        x_label=x_label,
        y_label="cumulative number of jobs (%)",
    )


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """A one-line summary of a series (min/max normalised bar heights).

    Useful to eyeball utilization traces inside log output without a full
    plot: ``sparkline(metrics.utilization_over(0, end)[1])``.
    """
    bars = " .:-=+*#%@"
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    if data.size > width:
        # Downsample by averaging consecutive chunks.
        chunks = np.array_split(data, width)
        data = np.asarray([chunk.mean() for chunk in chunks])
    low, high = float(data.min()), float(data.max())
    if high == low:
        return bars[1] * data.size
    indices = ((data - low) / (high - low) * (len(bars) - 1)).round().astype(int)
    return "".join(bars[i] for i in indices)
