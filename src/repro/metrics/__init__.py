"""Metrics and analysis of experiment runs.

The paper's evaluation (Section VII) reports, for each combination of a
malleability-management policy and a workload:

* the cumulative distribution of the per-job *time-averaged* number of
  processors (Figures 7(a)/8(a));
* the cumulative distribution of the per-job *maximum* number of processors
  (Figures 7(b)/8(b));
* the cumulative distributions of execution and response times
  (Figures 7(c,d)/8(c,d));
* the total number of used processors over time (utilization,
  Figures 7(e)/8(e));
* the cumulative activity of the malleability manager (number of grow
  messages / malleability operations over time, Figures 7(f)/8(f)).

:class:`~repro.metrics.collector.ExperimentMetrics` gathers the raw data for
all of these from a finished scheduler run; :mod:`repro.metrics.cdf` provides
the empirical-distribution helpers; :mod:`repro.metrics.reports` renders
aligned text tables and CSV output for the benchmark harness.
"""

from repro.metrics.cdf import EmpiricalCDF, cdf_points, fraction_at_or_below, percentile
from repro.metrics.collector import ExperimentMetrics, JobMetrics
from repro.metrics.asciiplot import ascii_plot, cdf_plot, sparkline
from repro.metrics.reports import (
    comparison_table,
    format_table,
    metrics_to_csv,
    summary_table,
)

__all__ = [
    "EmpiricalCDF",
    "ExperimentMetrics",
    "JobMetrics",
    "ascii_plot",
    "cdf_plot",
    "cdf_points",
    "comparison_table",
    "format_table",
    "fraction_at_or_below",
    "metrics_to_csv",
    "percentile",
    "sparkline",
    "summary_table",
]
