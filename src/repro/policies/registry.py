"""The unified policy registry and the :class:`PolicySpec` configuration value.

Every pluggable scheduling decision of the system — *where* a job runs (the
placement policies), *how* processors are spread over running malleable jobs
(the malleability policies) and *when* the malleability manager acts relative
to placement (the job-management approaches) — registers here under a
``(kind, name)`` key::

    from repro.policies import register
    from repro.koala.placement import PlacementPolicy

    @register("placement", "MYPOLICY")
    class MyPolicy(PlacementPolicy):
        '''One-line docstring shown by ``repro-cli list-policies``.'''
        name = "MYPOLICY"

        def __init__(self, favour: str = "small") -> None: ...

That single decorator makes the policy constructible from every
configuration surface: ``SchedulerConfig``/``ExperimentConfig`` fields,
:class:`~repro.experiments.scenarios.ScenarioSpec` variants, the
``repro-cli`` flags and the cache keys of the sweep engine.

Parameterisation is uniform, too: a policy reference is a
:class:`PolicySpec`, parsed from

* a bare name — ``"WF"``;
* a query-string form — ``"EGS?favour_interval=30"`` or
  ``"CF?file_size_mb=250&x=1"`` (values are parsed as Python literals when
  possible, so ``30`` is an int and ``0.5`` a float);
* a mapping — ``{"name": "CF", "params": {"file_size_mb": 250}}``;
* an existing :class:`PolicySpec` (passed through).

The canonical string form (:meth:`PolicySpec.canonical`) round-trips through
JSON and is what :class:`~repro.experiments.setup.ExperimentConfig`
serialises, so parameterised policies participate in result caching exactly
like named ones.
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

#: The three policy axes of the paper.  New kinds may be registered freely;
#: these are the ones the scheduler consults.
KINDS = ("placement", "malleability", "approach")

#: Environment variable naming extra policy modules (``os.pathsep``-separated
#: dotted names or ``.py`` paths) to import alongside the built-ins.  Set by
#: ``repro-cli --policy-module`` so worker *processes* of a parallel sweep —
#: which re-import this package from scratch under spawn/forkserver start
#: methods — see user-registered policies too.
POLICY_MODULES_ENV = "REPRO_POLICY_MODULES"

#: ``(kind, canonical name) -> policy class``.
_REGISTRY: Dict[Tuple[str, str], type] = {}

#: ``(kind, alias) -> canonical name``.
_ALIASES: Dict[Tuple[str, str], str] = {}

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in policies.

    Registration happens as a side effect of importing the defining modules;
    doing it lazily (on first registry query) keeps this module free of
    circular imports while guaranteeing that ``names("placement")`` is never
    empty just because nobody imported :mod:`repro.koala.placement` yet.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.koala.placement  # noqa: F401  (registers WF/CF/CM/FCM)
    import repro.malleability.manager  # noqa: F401  (registers PRA/PWA)
    import repro.malleability.policies  # noqa: F401  (registers FPSMA/EGS/...)
    import repro.policies.average_steal  # noqa: F401  (registers AVERAGE_STEAL)
    import repro.policies.backfilling  # noqa: F401  (registers EASY)
    import repro.policies.sjf  # noqa: F401  (registers SJF)
    extra = os.environ.get(POLICY_MODULES_ENV)
    if extra:
        load_policy_modules(part for part in extra.split(os.pathsep) if part)


#: Resolved paths of policy files already executed by this process.
_LOADED_POLICY_FILES: set = set()


def load_policy_modules(modules: "Sequence[str] | Iterator[str]") -> None:
    """Import *modules* so their ``@register`` decorators run.

    Accepts dotted module names and plain ``.py`` file paths.  Idempotent: a
    module (or path) that is already loaded is skipped rather than
    re-executed, so repeating ``--policy-module`` (or mixing it with an
    import of the same module) never trips the registry's duplicate check.
    Policy files are installed under a path-derived unique module name, so a
    file called ``ast.py`` or two plugin files sharing a stem neither shadow
    real modules nor collide with each other.
    """
    import hashlib

    for name in modules:
        path = Path(name)
        if path.suffix == ".py" and path.exists():
            resolved = str(path.resolve())
            if resolved in _LOADED_POLICY_FILES:
                continue
            digest = hashlib.sha256(resolved.encode()).hexdigest()[:8]
            key = f"_repro_policy_{path.stem}_{digest}"
            spec = importlib.util.spec_from_file_location(key, path)
            if spec is None or spec.loader is None:
                raise ImportError(f"cannot load policy module from {name!r}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[key] = module
            try:
                spec.loader.exec_module(module)
            except BaseException:
                sys.modules.pop(key, None)
                raise
            _LOADED_POLICY_FILES.add(resolved)
        else:
            importlib.import_module(name)  # sys.modules makes this idempotent


def register(
    kind: str, name: str, *, aliases: Tuple[str, ...] = ()
) -> Callable[[type], type]:
    """Class decorator registering a policy under ``(kind, name)``.

    *name* and *aliases* are case-insensitive (stored upper-cased).  The
    decorated class is returned unchanged, so the decorator stacks with
    anything else.  Re-registering a name raises unless it is the same class
    (which happens benignly when a module is imported twice under different
    names).
    """

    def decorator(cls: type) -> type:
        canonical = name.upper()
        key = (kind, canonical)
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"{kind} policy {canonical!r} is already registered to "
                f"{existing.__qualname__}"
            )
        _REGISTRY[key] = cls
        for alias in aliases:
            alias_key = (kind, alias.upper())
            if alias_key in _REGISTRY and alias_key != key:
                raise ValueError(
                    f"alias {alias!r} of {kind} policy {canonical!r} collides "
                    f"with the registered policy {alias.upper()!r}"
                )
            target = _ALIASES.get(alias_key)
            if target is not None and target != canonical:
                raise ValueError(
                    f"alias {alias!r} of {kind} policy {canonical!r} is "
                    f"already an alias of {target!r}"
                )
            _ALIASES[alias_key] = canonical
        return cls

    return decorator


def resolve(kind: str, name: str) -> type:
    """The class registered under ``(kind, name)`` (aliases resolved).

    Raises :class:`ValueError` listing every registered name of *kind* when
    the lookup fails — the message users see on a typo'd configuration.
    """
    _ensure_builtins()
    canonical = name.upper()
    # Direct registrations win over aliases, so an alias can never shadow a
    # registered name (register() also rejects such aliases up front).
    if (kind, canonical) not in _REGISTRY:
        canonical = _ALIASES.get((kind, canonical), canonical)
    try:
        return _REGISTRY[(kind, canonical)]
    except KeyError:
        from repro.refs import unknown_name_error

        raise unknown_name_error(f"{kind} policy", name, names(kind)) from None


def names(kind: str) -> Tuple[str, ...]:
    """The registered canonical names of *kind*, sorted."""
    _ensure_builtins()
    return tuple(sorted(n for (k, n) in _REGISTRY if k == kind))


def iter_registered() -> Iterator[Tuple[str, str, type]]:
    """Every registered ``(kind, name, class)``, sorted by kind then name."""
    _ensure_builtins()
    for (kind, name), cls in sorted(_REGISTRY.items()):
        yield kind, name, cls


def policy_signature(cls: type) -> str:
    """The constructor signature of a policy class, rendered for humans.

    ``EGS`` (no parameters) renders as ``""``; ``CF`` renders as
    ``"file_size_mb=500.0"``.
    """
    if cls.__init__ is object.__init__:
        return ""
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return ""
    parts = []
    for parameter in list(signature.parameters.values())[1:]:  # skip self
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            parts.append(str(parameter))
        elif parameter.default is inspect.Parameter.empty:
            parts.append(parameter.name)
        else:
            parts.append(f"{parameter.name}={parameter.default!r}")
    return ", ".join(parts)


def policy_doc(cls: type) -> str:
    """First line of the policy class docstring (empty if undocumented)."""
    doc = inspect.getdoc(cls)
    return doc.splitlines()[0].strip() if doc else ""


def parse_literal(text: str) -> Any:
    """Parse a parameter value as a Python literal, falling back to the string.

    Used by the query-string form of :meth:`PolicySpec.parse` and by the
    ``--policy-arg`` CLI flag, so ``30`` is an int, ``0.5`` a float,
    ``True`` a bool and anything else a plain string.  (An alias of
    :func:`repro.refs.parse_literal`, the grammar's literal value parser.)
    """
    from repro.refs import parse_literal as _refs_parse_literal

    return _refs_parse_literal(text)


_parse_value = parse_literal


@dataclass(frozen=True)
class PolicySpec:
    """A parsed, validated reference to one registered policy.

    ``kind`` names the axis, ``name`` the canonical registered name and
    ``params`` the constructor keyword arguments.  Specs are immutable and
    hashable (``params`` is stored as a sorted tuple of pairs), so they can
    key caches and live inside frozen configuration dataclasses.
    """

    kind: str
    name: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @classmethod
    def parse(cls, kind: str, value: Any) -> "PolicySpec":
        """Parse *value* into a validated spec (see module docstring forms).

        Raises :class:`ValueError` for unknown names (listing the registered
        ones) and :class:`TypeError` for parameters the policy's constructor
        does not accept, both *before* any simulation object is built.
        """
        if isinstance(value, PolicySpec):
            if value.kind != kind:
                raise ValueError(
                    f"expected a {kind} policy, got a {value.kind} spec "
                    f"({value.canonical()!r})"
                )
            spec = value
        elif isinstance(value, Mapping):
            params = dict(value.get("params") or {})
            spec = cls(kind, str(value["name"]), tuple(sorted(params.items())))
        elif isinstance(value, str):
            from repro.refs import parse_query, split_reference

            name, query = split_reference(value)
            params = parse_query(
                query,
                value_parser=_parse_value,
                malformed=lambda pair: (
                    f"malformed policy parameter {pair!r} in {value!r}; "
                    "expected name?key=value&key=value"
                ),
            )
            spec = cls(kind, name.strip(), tuple(sorted(params.items())))
        else:
            raise TypeError(
                f"cannot interpret {value!r} as a {kind} policy; expected a "
                "name string, 'name?key=value' string, mapping or PolicySpec"
            )
        policy_class = resolve(kind, spec.name)  # raises on unknown names
        canonical = spec.name.upper()
        if (kind, canonical) not in _REGISTRY:  # mirror resolve(): names win
            canonical = _ALIASES.get((kind, canonical), canonical)
        spec = cls(kind, canonical, spec.params)
        spec.validate_params(policy_class)
        return spec

    def validate_params(self, policy_class: Optional[type] = None) -> None:
        """Check the params against the policy constructor without building it."""
        cls = policy_class if policy_class is not None else self.resolve()
        if cls.__init__ is object.__init__:
            if self.params:
                raise TypeError(
                    f"{self.kind} policy {self.name!r} takes no parameters, "
                    f"got {dict(self.params)!r}"
                )
            return
        try:
            signature = inspect.signature(cls.__init__)
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return
        try:
            signature.bind_partial(None, **dict(self.params))
        except TypeError as error:
            raise TypeError(
                f"{self.kind} policy {self.name!r} does not accept "
                f"{dict(self.params)!r}: {error} "
                f"(signature: {policy_signature(cls) or 'no parameters'})"
            ) from None

    def resolve(self) -> type:
        """The registered policy class this spec refers to."""
        return resolve(self.kind, self.name)

    def build(self) -> Any:
        """Construct the policy instance with this spec's parameters."""
        return self.resolve()(**dict(self.params))

    def canonical(self) -> str:
        """The canonical string form (``"EGS"`` or ``"EGS?favour_interval=30"``).

        Parameters are sorted by name, so equal specs always render equally —
        the property the result cache's config hashing relies on.
        """
        if not self.params:
            return self.name
        query = "&".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name}?{query}"

    def __str__(self) -> str:
        return self.canonical()


def build_policy(kind: str, value: Any) -> Any:
    """Build a policy instance of *kind* from any accepted reference form.

    Already-constructed policy instances pass through unchanged (so tests and
    power users can inject bespoke objects); everything else goes through
    :meth:`PolicySpec.parse`.
    """
    if not isinstance(value, (str, Mapping, PolicySpec)):
        return value  # an instance, injected directly
    return PolicySpec.parse(kind, value).build()


def spec_string(kind: str, value: Any) -> str:
    """Normalise any accepted reference form to its canonical string."""
    return PolicySpec.parse(kind, value).canonical()
