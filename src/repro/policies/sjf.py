"""Shortest-Job-First placement, ported from wagomu's ``rigid_shortest_job_first``.

The wagomu malleable-job-scheduling study ships a rigid baseline that orders
the pending queue by expected runtime instead of arrival: the shortest
waiting job is always served first, and longer jobs only start once no
shorter job fits.  SJF minimises mean response time on a single queue at the
cost of fairness (long jobs can starve under a steady stream of short ones)
— exactly the trade-off the tournament harness wants to measure against the
paper's FCFS-based policies.

Like the EASY port, this is a *single-file policy*: the ``@register``
decorator below is everything needed to make ``SJF`` available to
``SchedulerConfig``/``ExperimentConfig``, every scenario sweep, the
``repro-cli`` flags and the result-cache keys.

Mechanics: the scheduler scans its placement queue FCFS and asks the policy
about each job in turn; this policy *defers* any job that should not run yet
(some shorter job is still waiting), which holds it in the queue penalty-free
(no placement-retry cost) until its turn comes.  Two variants:

* greedy (default, wagomu's behaviour): a longer job may start when every
  shorter waiting job provably cannot be placed right now — SJF order with
  first-fit skipping, no idle capacity wasted;
* ``strict=True``: a longer job never overtakes a shorter waiting one, even
  into processors the shorter job cannot use (textbook SJF, may idle
  resources).

Runtime estimates come from the application profiles' speedup models
(``execution_time`` at the requested size), the same heuristic source EASY
backfilling uses: estimates only affect *order*, never correctness.

Used standalone (no scheduler attached) the policy degrades to plain
Worst-Fit FCFS, again matching EASY.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.koala.job import Job, JobState
from repro.koala.placement import PlacementDecision, PlacementPolicy, WorstFit
from repro.policies.hooks import SchedulerHooks
from repro.policies.registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.multicluster import Multicluster
    from repro.koala.scheduler import KoalaScheduler


@register("placement", "SJF", aliases=("RIGID_SJF", "SHORTEST-JOB-FIRST"))
class ShortestJobFirst(PlacementPolicy, SchedulerHooks):
    """Serve the placement queue shortest-estimated-runtime first.

    Parameters
    ----------
    strict:
        ``False`` (default) is wagomu's greedy variant: a longer job may
        start while a shorter one waits *only* when the shorter job cannot
        be placed in the current idle view anyway.  ``True`` never lets a
        longer job overtake a shorter waiting one.
    """

    name = "SJF"

    def __init__(self, strict: bool = False) -> None:
        self.strict = bool(strict)
        self._scheduler: Optional["KoalaScheduler"] = None
        self._worst_fit = WorstFit()

    # -- scheduler hooks -----------------------------------------------------

    def on_attach(self, scheduler: "KoalaScheduler") -> None:
        self._scheduler = scheduler

    # -- placement -----------------------------------------------------------

    def place(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        multicluster: "Multicluster",
    ) -> PlacementDecision:
        scheduler = self._scheduler
        if scheduler is None:
            # Standalone use: no queue context, behave as Worst-Fit FCFS.
            return self._worst_fit.place(job, idle_processors, multicluster)

        blocker = self._shorter_waiting_job(job, idle_processors, scheduler)
        if blocker is not None:
            # A hold, not a capacity failure: the job waits its SJF turn
            # without burning placement retries.
            return PlacementDecision.deferral(
                job,
                f"SJF holds {job.name!r}: shorter job {blocker.name!r} "
                f"is still waiting",
            )
        return self._worst_fit.place(job, idle_processors, multicluster)

    # -- SJF order -----------------------------------------------------------

    def _shorter_waiting_job(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        scheduler: "KoalaScheduler",
    ) -> Optional[Job]:
        """The waiting job that outranks *job*, or ``None`` when it may run.

        Rank is (estimated runtime, queue position): the queue position
        tie-break keeps the order total and deterministic, so two jobs with
        identical estimates resolve FCFS.  In greedy mode a shorter job
        only blocks while it could actually be placed into the current idle
        view.
        """
        ranked = self._ranked_queue(scheduler)
        job_rank = None
        for rank, (_, candidate) in enumerate(ranked):
            if candidate is job:
                job_rank = rank
                break
        if job_rank is None:
            # Not in the queue (e.g. a direct placement probe): no SJF rank
            # to respect.
            return None
        for _, shorter in ranked[:job_rank]:
            if self.strict or self._could_place(shorter, idle_processors):
                return shorter
        return None

    def _ranked_queue(
        self, scheduler: "KoalaScheduler"
    ) -> List[Tuple[float, Job]]:
        """The still-queued jobs, shortest estimated runtime first."""
        ranked: List[Tuple[float, Job]] = []
        for entry in scheduler.queue:
            if entry.job.state is not JobState.QUEUED:
                continue
            ranked.append((self._estimated_runtime(entry.job), entry.job))
        # sort() is stable, so equal estimates keep their FCFS queue order.
        ranked.sort(key=lambda pair: pair[0])
        return ranked

    @staticmethod
    def _could_place(job: Job, idle_processors: Dict[str, int]) -> bool:
        """Whether *job* fits the current idle view (Worst-Fit feasibility).

        Component by component against a copy of the idle counts — the same
        greedy largest-component-first packing Worst-Fit itself performs, so
        "could be placed" and "would be placed" agree.
        """
        remaining = dict(idle_processors)
        for _, component in PlacementPolicy._component_requests(job):
            best = max(remaining, key=remaining.get, default=None)
            if best is None or remaining[best] < component.processors:
                return False
            remaining[best] -= component.processors
        return True

    @staticmethod
    def _estimated_runtime(job: Job) -> float:
        """Estimated runtime of a waiting job at its requested size."""
        return float(job.profile.execution_time(max(1, job.total_processors)))
