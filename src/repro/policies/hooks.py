"""Typed scheduler events and the hook protocol policies subscribe with.

The scheduler core does not call its policies at hard-coded points anymore;
it *emits* events, and anything implementing (part of) the
:class:`SchedulerHooks` interface reacts.  The first six events cover every
job-management trigger of the paper's system:

* :class:`JobSubmitted` — a job entered the placement queue;
* :class:`JobPlaced` — a placement decision succeeded and claiming started;
* :class:`JobStarted` — the application began executing;
* :class:`JobEnded` — the application finished (or the runner gave up);
* :class:`ProcessorsFreed` — a runner returned processors to a cluster;
* :class:`KisUpdated` — the information service completed a poll.

The fault-injection subsystem (:mod:`repro.faults`) adds four more, emitted
only when a fault model is configured:

* :class:`NodeFailed` / :class:`NodeRepaired` — processors of one cluster
  went down / came back;
* :class:`JobFailed` — a running job was killed by a node failure (and was
  resubmitted, unless its retry budget ran out);
* :class:`JobRescued` — a malleable job *shrank through* a node failure
  instead of dying, the paper's adaptation story under dynamic availability.

All three policy axes are wired through this one mechanism: the
job-management approach maps trigger events to its PRA/PWA round, while
placement and malleability policies may override any hook to maintain
internal state (the EASY-backfilling placement policy tracks the scheduler
this way).  Policies that ignore events inherit the no-op defaults from
:class:`SchedulerHooks`, so plain planners stay plain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.runtime import ExecutionRecord
    from repro.koala.job import Job
    from repro.koala.kis import KisSnapshot
    from repro.koala.scheduler import KoalaScheduler


@dataclass(frozen=True)
class SchedulerEvent:
    """Base class of all scheduler events; carries the simulation time."""

    time: float


@dataclass(frozen=True)
class JobSubmitted(SchedulerEvent):
    """A job was accepted and enqueued for placement."""

    job: "Job"


@dataclass(frozen=True)
class JobPlaced(SchedulerEvent):
    """A placement decision succeeded; processors are being claimed."""

    job: "Job"
    cluster_name: str
    processors: int


@dataclass(frozen=True)
class JobStarted(SchedulerEvent):
    """A job's application is now executing."""

    job: "Job"


@dataclass(frozen=True)
class JobEnded(SchedulerEvent):
    """A job left the system: it finished, or its runner gave up.

    ``failed`` distinguishes the two; ``record`` is present only for
    successful completions, ``reason`` only for failures.
    """

    job: "Job"
    record: Optional["ExecutionRecord"] = None
    failed: bool = False
    reason: str = ""


@dataclass(frozen=True)
class ProcessorsFreed(SchedulerEvent):
    """A runner released processors on one cluster (shrink, finish, decline)."""

    cluster_name: str


@dataclass(frozen=True)
class KisUpdated(SchedulerEvent):
    """The KOALA information service completed a poll."""

    snapshot: "KisSnapshot"


@dataclass(frozen=True)
class NodeFailed(SchedulerEvent):
    """Processors of one cluster went down.

    ``graceful`` marks a *drain*: the processors leave the pool as they fall
    idle, so no running job is killed.
    """

    cluster_name: str
    processors: int
    graceful: bool = False


@dataclass(frozen=True)
class NodeRepaired(SchedulerEvent):
    """Previously failed processors of one cluster came back."""

    cluster_name: str
    processors: int


@dataclass(frozen=True)
class JobFailed(SchedulerEvent):
    """A running job was killed by a node failure.

    ``resubmitted`` tells whether the job went back to the placement queue
    (the retry policy allowed another attempt) or was abandoned for good
    (in which case a failed :class:`JobEnded` follows).
    """

    job: "Job"
    reason: str = ""
    resubmitted: bool = True


@dataclass(frozen=True)
class JobRescued(SchedulerEvent):
    """A malleable job survived a node failure by shrinking through it."""

    job: "Job"
    cluster_name: str
    lost: int


#: Event class -> hook method name, in one place so dispatcher and docs agree.
HOOK_METHODS: Dict[type, str] = {
    JobSubmitted: "on_job_submitted",
    JobPlaced: "on_job_placed",
    JobStarted: "on_job_started",
    JobEnded: "on_job_ended",
    ProcessorsFreed: "on_processors_freed",
    KisUpdated: "on_kis_updated",
    NodeFailed: "on_node_failed",
    NodeRepaired: "on_node_repaired",
    JobFailed: "on_job_failed",
    JobRescued: "on_job_rescued",
}


class SchedulerHooks:
    """No-op implementation of every scheduler hook.

    Subclass (or duck-type) this and override the events you care about.
    Every hook receives the typed event and the emitting scheduler.
    :meth:`on_attach` fires once, when the scheduler subscribes the policy,
    and is the place to capture references to scheduler state (queue,
    running jobs, information service).
    """

    def on_attach(self, scheduler: "KoalaScheduler") -> None:
        """Called once when the scheduler subscribes this hook."""

    def on_job_submitted(self, event: JobSubmitted, scheduler: "KoalaScheduler") -> None:
        """A job entered the placement queue."""

    def on_job_placed(self, event: JobPlaced, scheduler: "KoalaScheduler") -> None:
        """A placement decision succeeded; claiming started."""

    def on_job_started(self, event: JobStarted, scheduler: "KoalaScheduler") -> None:
        """A job's application began executing."""

    def on_job_ended(self, event: JobEnded, scheduler: "KoalaScheduler") -> None:
        """A job finished or was abandoned."""

    def on_processors_freed(self, event: ProcessorsFreed, scheduler: "KoalaScheduler") -> None:
        """Processors were returned to a cluster."""

    def on_kis_updated(self, event: KisUpdated, scheduler: "KoalaScheduler") -> None:
        """The information service completed a poll."""

    def on_node_failed(self, event: NodeFailed, scheduler: "KoalaScheduler") -> None:
        """Processors of one cluster went down."""

    def on_node_repaired(self, event: NodeRepaired, scheduler: "KoalaScheduler") -> None:
        """Previously failed processors came back."""

    def on_job_failed(self, event: JobFailed, scheduler: "KoalaScheduler") -> None:
        """A running job was killed by a node failure."""

    def on_job_rescued(self, event: JobRescued, scheduler: "KoalaScheduler") -> None:
        """A malleable job shrank through a node failure."""


class TriggerOnSchedulingEvents(SchedulerHooks):
    """Maps the paper's job-management trigger points onto ``scheduler.trigger()``.

    A submission, a successful completion, a processor release and an
    information-service poll each start one re-entrancy-collapsed
    job-management round; abandoned jobs release nothing new, so failed
    :class:`JobEnded` events do not retrigger (matching the pre-redesign
    scheduler callbacks exactly).  Both the :class:`JobManagementApproach`
    base class and the scheduler's malleability-disabled fallback inherit
    this wiring, so the two modes cannot diverge.
    """

    def on_job_submitted(self, event: JobSubmitted, scheduler: "KoalaScheduler") -> None:
        scheduler.trigger()

    def on_job_ended(self, event: JobEnded, scheduler: "KoalaScheduler") -> None:
        if not event.failed:
            scheduler.trigger()

    def on_processors_freed(self, event: ProcessorsFreed, scheduler: "KoalaScheduler") -> None:
        scheduler.trigger()

    def on_kis_updated(self, event: KisUpdated, scheduler: "KoalaScheduler") -> None:
        scheduler.trigger()

    def on_node_repaired(self, event: NodeRepaired, scheduler: "KoalaScheduler") -> None:
        # Repaired capacity is freshly available capacity: placements and
        # grow operations should react immediately, not at the next KIS poll.
        # (Failures need no trigger of their own — they only remove capacity,
        # and any resubmission they cause re-triggers via JobSubmitted.)
        scheduler.trigger()


def implements_hooks(obj: Any) -> bool:
    """Whether *obj* overrides at least one hook method (or defines its own)."""
    for method_name in list(HOOK_METHODS.values()) + ["on_attach"]:
        method = getattr(type(obj), method_name, None)
        if method is not None and method is not getattr(SchedulerHooks, method_name):
            return True
    return False


class HookDispatcher:
    """Routes typed events to the subscribed hooks, in subscription order.

    Subscription order is deterministic and meaningful: the scheduler
    subscribes the placement policy, then the malleability policy, then the
    job-management approach, so the approach's trigger round always sees
    state updates the other axes made for the same event.
    """

    def __init__(self, scheduler: "KoalaScheduler") -> None:
        self.scheduler = scheduler
        #: Optional :class:`repro.obs.trace.Tracer`; the dispatcher is the
        #: single choke point every typed scheduler event flows through, so
        #: one ``None`` check here traces all of them.
        self._tracer = None
        self._subscribers: List[Any] = []
        #: Event type -> tuple of bound hook methods, rebuilt on every
        #: (un)subscription.  Inherited no-op defaults are filtered out at
        #: build time, so emitting an event nobody reacts to iterates an
        #: empty tuple instead of calling every subscriber's no-op.
        self._dispatch: Dict[type, tuple] = {etype: () for etype in HOOK_METHODS}

    @property
    def subscribers(self) -> List[Any]:
        """The subscribed hooks, in dispatch order."""
        return list(self._subscribers)

    def subscribe(self, hooks: Any) -> None:
        """Add *hooks* (idempotently) and fire its ``on_attach``."""
        if hooks in self._subscribers:
            return
        self._subscribers.append(hooks)
        self._rebuild_dispatch()
        attach = getattr(hooks, "on_attach", None)
        if attach is not None:
            attach(self.scheduler)

    def unsubscribe(self, hooks: Any) -> None:
        """Remove *hooks* (a no-op when it was never subscribed)."""
        if hooks in self._subscribers:
            self._subscribers.remove(hooks)
            self._rebuild_dispatch()

    def _rebuild_dispatch(self) -> None:
        dispatch: Dict[type, tuple] = {}
        for event_type, method_name in HOOK_METHODS.items():
            default = getattr(SchedulerHooks, method_name, None)
            methods = []
            for hooks in self._subscribers:
                method = getattr(hooks, method_name, None)
                if method is None:
                    continue
                if getattr(type(hooks), method_name, None) is default:
                    # The inherited no-op from SchedulerHooks: skip at build
                    # time rather than calling it on every emit.
                    continue
                methods.append(method)
            dispatch[event_type] = tuple(methods)
        self._dispatch = dispatch

    def set_tracer(self, tracer) -> None:
        """Attach (or with ``None`` detach) a structured-event tracer."""
        self._tracer = tracer

    def emit(self, event: SchedulerEvent) -> None:
        """Deliver *event* to every subscriber implementing its hook."""
        tracer = self._tracer
        if tracer is not None:
            tracer.record_hook(event)
        scheduler = self.scheduler
        for method in self._dispatch[type(event)]:
            method(event, scheduler)
