"""The unified pluggable policy API.

This package is the single entry point for every pluggable scheduling
decision in the system:

* :mod:`repro.policies.registry` — the ``(kind, name)`` registry, the
  :func:`register` decorator and the :class:`PolicySpec` value that parses
  parameterised policy references (``"EGS?favour_interval=30"``) from
  strings, mappings and CLI flags;
* :mod:`repro.policies.hooks` — the typed scheduler events
  (:class:`JobSubmitted`, :class:`JobPlaced`, :class:`JobStarted`,
  :class:`JobEnded`, :class:`ProcessorsFreed`, :class:`KisUpdated`), the
  :class:`SchedulerHooks` interface policies subscribe with and the
  :class:`HookDispatcher` the scheduler emits through;
* :mod:`repro.policies.backfilling` — the FCFS + EASY-backfilling placement
  policy (``"EASY"``), the first hook-driven policy;
* :mod:`repro.policies.average_steal` — the ElastiSim-style average-steal
  fair-share malleability policy (``"AVERAGE_STEAL"``).

Writing a new policy is one file: subclass the axis base class
(:class:`~repro.koala.placement.PlacementPolicy`,
:class:`~repro.malleability.policies.MalleabilityPolicy` or
:class:`~repro.malleability.manager.JobManagementApproach`), decorate it with
:func:`register`, and every configuration surface — ``ExperimentConfig``,
scenario variants, ``repro-cli`` — can construct it by name, with parameters.
See ``examples/custom_policy.py``.
"""

from repro.policies.hooks import (
    HOOK_METHODS,
    HookDispatcher,
    JobEnded,
    JobFailed,
    JobPlaced,
    JobRescued,
    JobStarted,
    JobSubmitted,
    KisUpdated,
    NodeFailed,
    NodeRepaired,
    ProcessorsFreed,
    SchedulerEvent,
    SchedulerHooks,
    implements_hooks,
)
from repro.policies.registry import (
    KINDS,
    PolicySpec,
    build_policy,
    iter_registered,
    names,
    parse_literal,
    policy_doc,
    policy_signature,
    register,
    resolve,
    spec_string,
)

__all__ = [
    "HOOK_METHODS",
    "HookDispatcher",
    "JobEnded",
    "JobFailed",
    "JobPlaced",
    "JobRescued",
    "JobStarted",
    "JobSubmitted",
    "KINDS",
    "KisUpdated",
    "NodeFailed",
    "NodeRepaired",
    "PolicySpec",
    "ProcessorsFreed",
    "SchedulerEvent",
    "SchedulerHooks",
    "build_policy",
    "implements_hooks",
    "iter_registered",
    "names",
    "parse_literal",
    "policy_doc",
    "policy_signature",
    "register",
    "resolve",
    "spec_string",
]
