"""FCFS + EASY-backfilling placement policy.

The classic EASY algorithm (and its ElastiSim incarnation,
``rigid_easy_backfill.py``): jobs are placed strictly first-come-first-served,
except that a job further back in the queue may *backfill* — start out of
order — when doing so provably does not delay the estimated start of the jobs
at the head of the queue.

The paper's placement policies are stateless functions of the idle-processor
view, but EASY needs more: the placement queue order and runtime estimates of
the running jobs.  This policy is therefore also the first consumer of the
scheduler's event-hook API — it receives the scheduler via
:meth:`~repro.policies.hooks.SchedulerHooks.on_attach` and reads the queue
and the running set through it.  Used standalone (no scheduler attached) it
degrades gracefully to plain Worst-Fit FCFS.

Runtime estimates use the application profiles' speedup models: a running
job's remaining time is ``remaining_fraction * execution_time(allocation)``
and a waiting job's runtime is ``execution_time(requested)``.  Estimates are
heuristics — exactly as in real EASY, where users supply (bad) runtime
estimates — so backfilling decisions can be wrong without ever breaking
correctness; they only affect order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.koala.job import Job, JobState
from repro.koala.placement import PlacementDecision, PlacementPolicy, WorstFit
from repro.policies.hooks import SchedulerHooks
from repro.policies.registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.multicluster import Multicluster
    from repro.koala.scheduler import KoalaScheduler


@register("placement", "EASY", aliases=("BACKFILL", "FCFS-EASY"))
class EasyBackfilling(PlacementPolicy, SchedulerHooks):
    """FCFS placement with EASY backfilling behind a head reservation.

    Parameters
    ----------
    reserve_depth:
        How many jobs at the head of the placement queue hold a shadow
        reservation that backfilled jobs must not delay.  ``1`` is classic
        EASY; higher values approach conservative backfilling.
    runtime_margin:
        Multiplier on a backfill candidate's estimated runtime before it is
        compared against the shadow time.  Values above 1 make backfilling
        more cautious against optimistic speedup estimates.
    """

    name = "EASY"

    def __init__(self, reserve_depth: int = 1, runtime_margin: float = 1.0) -> None:
        if reserve_depth < 1:
            raise ValueError("reserve_depth must be >= 1")
        if runtime_margin <= 0:
            raise ValueError("runtime_margin must be positive")
        self.reserve_depth = int(reserve_depth)
        self.runtime_margin = float(runtime_margin)
        self._scheduler: Optional["KoalaScheduler"] = None
        self._worst_fit = WorstFit()

    # -- scheduler hooks -----------------------------------------------------

    def on_attach(self, scheduler: "KoalaScheduler") -> None:
        self._scheduler = scheduler

    # -- placement -----------------------------------------------------------

    def place(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        multicluster: "Multicluster",
    ) -> PlacementDecision:
        scheduler = self._scheduler
        if scheduler is None:
            # Standalone use: no queue context, behave as Worst-Fit FCFS.
            return self._worst_fit.place(job, idle_processors, multicluster)

        # A job only has to respect the reservations of heads *ahead* of it
        # in the queue: the true head answers to nobody, the second reserved
        # head must still not delay the first, and so on.
        ahead: List[Job] = []
        for head in self._reserved_heads(scheduler):
            if head is job:
                break
            ahead.append(head)

        decision = self._worst_fit.place(job, idle_processors, multicluster)
        if not decision.success:
            return decision
        for head in ahead:
            if not self._respects_reservation(
                decision, head, idle_processors, scheduler
            ):
                # A hold, not a capacity failure: the job must not burn
                # placement retries while it politely waits its turn.
                return PlacementDecision.deferral(
                    job,
                    f"backfilling {job.name!r} would delay the reserved job "
                    f"{head.name!r}",
                )
        return decision

    def _reserved_heads(self, scheduler: "KoalaScheduler") -> List[Job]:
        """The first ``reserve_depth`` still-queued jobs, FCFS order.

        A candidate job that is itself among these holds a reservation too;
        :meth:`place` checks it only against the reserved heads in front of
        it, so deeper reservations never let a later job delay an earlier
        one.
        """
        heads: List[Job] = []
        for entry in scheduler.queue:
            if entry.job.state is not JobState.QUEUED:
                continue
            heads.append(entry.job)
            if len(heads) >= self.reserve_depth:
                break
        return heads

    # -- reservation arithmetic ---------------------------------------------

    def _respects_reservation(
        self,
        decision: PlacementDecision,
        head: Job,
        idle_processors: Dict[str, int],
        scheduler: "KoalaScheduler",
    ) -> bool:
        """Whether executing *decision* now cannot delay *head*'s shadow start."""
        shadow = self._shadow(head, idle_processors, scheduler)
        if shadow is None:
            # The head cannot start anywhere even with every running job
            # finished; nothing this candidate does can make that worse.
            return True
        shadow_cluster, shadow_time, spare = shadow
        candidate = decision.processors_on(shadow_cluster)
        if candidate == 0:
            # The candidate only touches clusters the reservation ignores.
            return True
        if candidate <= spare:
            # It fits into processors the head will not need at its shadow
            # start time.
            return True
        runtime = self._estimated_runtime(decision.job)
        now = scheduler.env.now
        return now + runtime * self.runtime_margin <= shadow_time

    def _shadow(
        self,
        head: Job,
        idle_processors: Dict[str, int],
        scheduler: "KoalaScheduler",
    ) -> Optional[Tuple[str, float, int]]:
        """The head's shadow reservation: (cluster, start estimate, spare).

        For every cluster, walk the running jobs in order of estimated
        completion, accumulating their processors onto the idle count until
        the head fits; the cluster reaching that point earliest wins.  *spare*
        is how many processors exceed the head's need at that moment — the
        room backfilled jobs may use freely.
        """
        needed = head.total_processors
        now = scheduler.env.now
        best: Optional[Tuple[float, str, int]] = None
        for cluster_name in scheduler.cluster_names():
            available = idle_processors.get(cluster_name, 0)
            if available >= needed:
                key = (now, cluster_name, available - needed)
            else:
                key = None
                for finish, processors in self._completions(scheduler, cluster_name):
                    available += processors
                    if available >= needed:
                        key = (finish, cluster_name, available - needed)
                        break
            if key is not None and (best is None or (key[0], key[1]) < (best[0], best[1])):
                best = key
        if best is None:
            return None
        shadow_time, cluster_name, spare = best[0], best[1], best[2]
        return cluster_name, shadow_time, spare

    def _completions(
        self, scheduler: "KoalaScheduler", cluster_name: str
    ) -> List[Tuple[float, int]]:
        """(estimated finish time, processors) of running jobs on one cluster."""
        completions: List[Tuple[float, int]] = []
        now = scheduler.env.now
        for job in scheduler.running_jobs():
            runner = scheduler.runner_for(job)
            if runner.cluster_name != cluster_name or not runner.is_running:
                continue
            allocation = runner.current_allocation
            application = runner.application
            if allocation <= 0 or application is None:
                continue
            remaining = application.remaining_fraction * job.profile.execution_time(
                allocation
            )
            completions.append((now + max(0.0, remaining), allocation))
        completions.sort()
        return completions

    @staticmethod
    def _estimated_runtime(job: Job) -> float:
        """Estimated runtime of a waiting job at its requested size."""
        return float(job.profile.execution_time(max(1, job.total_processors)))
