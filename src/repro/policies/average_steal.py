"""Average-steal (fair-share) malleability policy, after ElastiSim.

The MalleableJobScheduling/ElastiSim project schedules malleable jobs with an
*average-steal agreement*: when processors free up they are handed to the
running malleable jobs with the **lowest** relative node usage first, and when
processors must be reclaimed they are stolen from the jobs with the
**highest** relative usage first, so allocations converge towards the average
fill level instead of towards identical absolute sizes.

This module reproduces that policy in the paper's planner interface: it is a
pure function over read-only job views, parameterised by how "usage" is
measured, and registered in the unified policy registry so it is available to
every configuration surface under the name ``AVERAGE_STEAL`` (alias
``STEAL``)::

    ExperimentConfig(malleability_policy="AVERAGE_STEAL?balance=absolute")
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.malleability.policies import (
    GrowDirective,
    MalleabilityPolicy,
    MalleableJobView,
    ShrinkDirective,
    eligible_runners,
)
from repro.policies.registry import register

#: Accepted values of the ``balance`` parameter.
BALANCE_MODES = ("fraction", "absolute")


def _bounds(runner: MalleableJobView) -> tuple:
    """The (minimum, maximum) processor bounds of a runner's job.

    Falls back to ``(0, None)`` for bare views (e.g. test fakes) that do not
    expose a job, in which case fill fractions degrade to absolute sizes.
    """
    job = getattr(runner, "job", None)
    if job is None:
        return 0, None
    return getattr(job, "minimum_processors", 0), getattr(job, "maximum_processors", None)


@register("malleability", "AVERAGE_STEAL", aliases=("STEAL",))
class AverageSteal(MalleabilityPolicy):
    """Fair-share policy: grow the emptiest jobs first, steal from the fullest.

    Parameters
    ----------
    balance:
        ``"fraction"`` (default) ranks jobs by their fill fraction
        ``(allocation - minimum) / (maximum - minimum)``, which is what
        ElastiSim's average-steal agreement uses and what makes jobs with
        wide size ranges share proportionally.  ``"absolute"`` ranks by the
        raw allocation, which makes the policy behave like a classic
        fair-share equipartitioner.
    """

    name = "AVERAGE_STEAL"

    def __init__(self, balance: str = "fraction") -> None:
        if balance not in BALANCE_MODES:
            raise ValueError(
                f"unknown balance mode {balance!r}; expected one of {BALANCE_MODES}"
            )
        self.balance = balance

    # -- ranking -------------------------------------------------------------

    def _priority(self, runner: MalleableJobView, adjustment: int) -> float:
        """Fill level of *runner* assuming *adjustment* planned processors."""
        allocation = runner.current_allocation + adjustment
        if self.balance == "absolute":
            return float(allocation)
        minimum, maximum = _bounds(runner)
        if maximum is None or maximum <= minimum:
            return float(allocation)
        return (allocation - minimum) / (maximum - minimum)

    # -- planning ------------------------------------------------------------

    def plan_grow(
        self, runners: Sequence[MalleableJobView], grow_value: int
    ) -> List[GrowDirective]:
        directives: List[GrowDirective] = []
        eligible = eligible_runners(runners)
        remaining = int(grow_value)
        if remaining <= 0 or not eligible:
            return directives
        # Hand processors out one at a time to the currently emptiest job
        # that still accepts them, so allocations drift towards the average.
        # One O(n) scan per processor (ties broken by input order, which is
        # deterministic) — no per-unit re-sort.
        planned: Dict[int, int] = {id(runner): 0 for runner in eligible}
        while remaining > 0:
            best = None
            for index, runner in enumerate(eligible):
                already = planned[id(runner)]
                if runner.preview_grow(already + 1) <= already:
                    continue
                rank = (self._priority(runner, already), index)
                if best is None or rank < best[0]:
                    best = (rank, runner)
            if best is None:
                break
            planned[id(best[1])] += 1
            remaining -= 1
        for runner in eligible:
            amount = planned[id(runner)]
            if amount <= 0:
                continue
            accepted = runner.preview_grow(amount)
            if accepted > 0:
                directives.append(
                    GrowDirective(runner=runner, offered=amount, expected=accepted)
                )
        return directives

    def plan_shrink(
        self, runners: Sequence[MalleableJobView], shrink_value: int
    ) -> List[ShrinkDirective]:
        directives: List[ShrinkDirective] = []
        eligible = eligible_runners(runners)
        remaining = int(shrink_value)
        if remaining <= 0 or not eligible:
            return directives
        # Mirror image of plan_grow: steal from the currently fullest job.
        planned: Dict[int, int] = {id(runner): 0 for runner in eligible}
        while remaining > 0:
            best = None
            for index, runner in enumerate(eligible):
                already = planned[id(runner)]
                if runner.preview_shrink(already + 1) <= already:
                    continue
                rank = (-self._priority(runner, -already), index)
                if best is None or rank < best[0]:
                    best = (rank, runner)
            if best is None:
                break
            planned[id(best[1])] += 1
            remaining -= 1
        for runner in eligible:
            amount = planned[id(runner)]
            if amount <= 0:
                continue
            accepted = runner.preview_shrink(amount)
            if accepted > 0:
                directives.append(
                    ShrinkDirective(runner=runner, requested=amount, expected=accepted)
                )
        return directives
