"""The KOALA job model.

Following the classification of parallel jobs the paper adopts from Feitelson
and Rudolph (Section II-A), a job is *rigid* (fixed processor count),
*moldable* (processor count chosen at start time, fixed afterwards) or
*malleable* (processor count may change during execution).

Within the KOALA job model a job comprises one or more *components* that can
each run on a separate cluster (co-allocation).  The experiments of the paper
use single-component jobs only — "we assume that every application is
executed in a single cluster, and so, no co-allocation takes place" — but the
job model and the placement policies support multiple components, since the
CM and FCM policies exist precisely for co-allocated jobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import List, Optional, Tuple

from repro.apps.profiles import ApplicationProfile


class JobKind(enum.Enum):
    """Feitelson & Rudolph's classification of parallel jobs."""

    RIGID = "rigid"
    MOLDABLE = "moldable"
    MALLEABLE = "malleable"


class JobState(enum.Enum):
    """Lifecycle of a KOALA job."""

    #: Created but not yet handed to the scheduler.
    CREATED = "created"
    #: Submitted; waiting in the placement queue.
    QUEUED = "queued"
    #: A placement decision has been made; processors are being claimed.
    PLACING = "placing"
    #: The application is executing.
    RUNNING = "running"
    #: The application completed successfully.
    FINISHED = "finished"
    #: The job was abandoned (placement retries exhausted or claim failures).
    FAILED = "failed"


@dataclass
class JobComponent:
    """One component of a KOALA job.

    Attributes
    ----------
    processors:
        Number of processors the component initially asks for.
    input_files:
        Names of input files the component reads; used by the Close-to-Files
        policy together with the replica catalogue.
    cluster:
        Name of the cluster the component was placed on (``None`` while
        unplaced).
    """

    processors: int
    input_files: Tuple[str, ...] = ()
    cluster: Optional[str] = None

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("a component needs at least one processor")


_job_ids = count(1)


@dataclass
class Job:
    """A KOALA job: an application run with its scheduling metadata.

    Attributes
    ----------
    profile:
        The application profile this job runs.
    kind:
        Rigid, moldable or malleable.
    components:
        The job's components (a single component for all workloads evaluated
        in the paper).
    minimum_processors / maximum_processors:
        Malleable jobs specify the range within which their size may vary
        (Section II-B); ignored for rigid jobs.
    name:
        Optional human-readable name; defaults to ``"<profile>-<id>"``.
    submit_time / start_time / finish_time:
        Lifecycle timestamps filled in by the scheduler and runner.
    placement_tries:
        Number of failed placement attempts so far (the scheduler abandons
        the job once this exceeds the retry threshold).
    """

    profile: ApplicationProfile
    kind: JobKind
    components: List[JobComponent]
    minimum_processors: int = 2
    maximum_processors: int = 32
    name: str = ""
    job_id: int = field(default_factory=lambda: next(_job_ids))
    state: JobState = JobState.CREATED
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    placement_tries: int = 0
    failure_reason: str = ""

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a job needs at least one component")
        if self.minimum_processors < 1:
            raise ValueError("minimum_processors must be >= 1")
        if self.maximum_processors < self.minimum_processors:
            raise ValueError("maximum_processors must be >= minimum_processors")
        if not self.name:
            self.name = f"{self.profile.name}-{self.job_id}"
        if self.kind is not JobKind.MALLEABLE and len(self.components) == 1:
            # For rigid jobs the requested size is authoritative.
            pass

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def malleable(
        cls,
        profile: ApplicationProfile,
        *,
        initial_processors: Optional[int] = None,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
        input_files: Tuple[str, ...] = (),
        name: str = "",
    ) -> "Job":
        """Create a single-component malleable job from *profile*.

        Defaults follow the paper's workloads: the initial size equals the
        minimum size (2 processors) and the maximum comes from the profile.
        """
        minimum = profile.default_minimum if minimum is None else minimum
        maximum = profile.default_maximum if maximum is None else maximum
        initial = minimum if initial_processors is None else initial_processors
        return cls(
            profile=profile,
            kind=JobKind.MALLEABLE,
            components=[JobComponent(processors=initial, input_files=input_files)],
            minimum_processors=minimum,
            maximum_processors=maximum,
            name=name,
        )

    @classmethod
    def rigid(
        cls,
        profile: ApplicationProfile,
        processors: int,
        *,
        input_files: Tuple[str, ...] = (),
        name: str = "",
    ) -> "Job":
        """Create a single-component rigid job of *processors* processors."""
        return cls(
            profile=profile,
            kind=JobKind.RIGID,
            components=[JobComponent(processors=processors, input_files=input_files)],
            minimum_processors=processors,
            maximum_processors=processors,
            name=name,
        )

    @classmethod
    def moldable(
        cls,
        profile: ApplicationProfile,
        *,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
        input_files: Tuple[str, ...] = (),
        name: str = "",
    ) -> "Job":
        """Create a single-component moldable job.

        The scheduler chooses the size within ``[minimum, maximum]`` at start
        time; the size never changes afterwards.
        """
        minimum = profile.default_minimum if minimum is None else minimum
        maximum = profile.default_maximum if maximum is None else maximum
        return cls(
            profile=profile,
            kind=JobKind.MOLDABLE,
            components=[JobComponent(processors=minimum, input_files=input_files)],
            minimum_processors=minimum,
            maximum_processors=maximum,
            name=name,
        )

    # -- derived attributes ------------------------------------------------------

    @property
    def is_malleable(self) -> bool:
        """Whether the job can change size during execution."""
        return self.kind is JobKind.MALLEABLE

    @property
    def total_processors(self) -> int:
        """Sum of the processors requested by all components."""
        return sum(component.processors for component in self.components)

    @property
    def single_component(self) -> JobComponent:
        """The job's only component (raises for co-allocated jobs)."""
        if len(self.components) != 1:
            raise ValueError(f"job {self.name!r} has {len(self.components)} components")
        return self.components[0]

    @property
    def placed(self) -> bool:
        """Whether all components have been assigned a cluster."""
        return all(component.cluster is not None for component in self.components)

    @property
    def response_time(self) -> float:
        """Time from submission to completion."""
        if self.submit_time is None or self.finish_time is None:
            raise ValueError(f"job {self.name!r} is not finished")
        return self.finish_time - self.submit_time

    @property
    def execution_time(self) -> float:
        """Time from execution start to completion."""
        if self.start_time is None or self.finish_time is None:
            raise ValueError(f"job {self.name!r} is not finished")
        return self.finish_time - self.start_time

    def clear_placement(self) -> None:
        """Forget any previous placement decision (used when re-queueing)."""
        for component in self.components:
            component.cluster = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Job {self.name!r} {self.kind.value} {self.total_processors}p "
            f"state={self.state.value}>"
        )
