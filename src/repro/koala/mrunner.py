"""The Malleable Runner (MRunner).

The MRunner extends the usual control role of a runner with malleability
operations (Section V-A of the paper).  Key design points reproduced here:

* a complete DYNACO instance is embedded per application; the runner
  frontend is reflected as a DYNACO monitor that turns scheduler grow/shrink
  messages into adaptation events;
* because GRAM cannot manage malleable jobs, the malleable application is
  managed as a *collection of GRAM jobs of size 1*: growth submits new
  size-1 GRAM jobs, shrinking releases some of them;
* GRAM interactions overlap with application execution: on growth the
  application is not suspended before all new processors are held (the
  stubs are recruited first), and on shrink the processors are only released
  to GRAM after the application has given them back, while execution resumes
  immediately;
* the application may accept fewer processors than offered (e.g. FT's
  power-of-two constraint); the surplus is voluntarily released and the
  scheduler is notified.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.runtime import RunningApplication
from repro.cluster.gram import GramJob
from repro.dynaco.decide import MalleabilityDecision
from repro.dynaco.events import GrowOffer, ShrinkRequest
from repro.dynaco.execute import AfpacExecutor
from repro.dynaco.framework import Dynaco
from repro.dynaco.observe import SchedulerFrontendMonitor
from repro.dynaco.plan import MalleabilityPlanner
from repro.koala.claiming import ClaimLedger, PendingClaim
from repro.koala.job import JobKind, JobState
from repro.koala.runners import JobRunner
from repro.sim.events import Event


class MalleableRunner(JobRunner):
    """Runner for malleable (DYNACO-based) applications."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.dynaco: Optional[Dynaco] = None
        self.monitor = SchedulerFrontendMonitor(frontend_name=f"frontend:{self.job.name}")
        self._reconfiguring = False
        #: Count of grow/shrink operations that were actually executed.
        self.grow_operations = 0
        self.shrink_operations = 0
        #: Processors voluntarily released (offered or claimed but not used).
        self.voluntarily_released = 0

    # -- queries used by the malleability policies ----------------------------

    @property
    def reconfiguring(self) -> bool:
        """Whether a grow or shrink operation is currently in flight."""
        return self._reconfiguring

    def preview_grow(self, offered: int) -> int:
        """Additional processors the application would accept from *offered*.

        Previews are pure message exchanges ("get accepted number of
        processors from Job" in the policy pseudo-code): they never publish
        through the monitor, so no adaptation is triggered.
        """
        if self.dynaco is None or self.application is None or self.application.is_finished:
            return 0
        current = self.application.allocation
        event = GrowOffer(time=self.env.now, offered=offered, current_allocation=current)
        strategy = self.dynaco.preview(event, current)
        return max(0, strategy.target_allocation - current)

    def preview_shrink(self, requested: int) -> int:
        """Processors the application would release if asked for *requested*."""
        if self.dynaco is None or self.application is None or self.application.is_finished:
            return 0
        current = self.application.allocation
        event = ShrinkRequest(time=self.env.now, requested=requested, current_allocation=current)
        strategy = self.dynaco.preview(event, current)
        return max(0, current - strategy.target_allocation)

    @property
    def shrinkable_processors(self) -> int:
        """Processors the job could give up without going below its minimum."""
        if self.application is None or self.application.is_finished:
            return 0
        return max(0, self.application.allocation - self.job.minimum_processors)

    @property
    def growable_processors(self) -> int:
        """Processors the job could still gain before reaching its maximum."""
        if self.application is None or self.application.is_finished:
            return 0
        return max(0, self.job.maximum_processors - self.application.allocation)

    # -- placement -------------------------------------------------------------

    def start(
        self,
        cluster_name: str,
        processors: int,
        *,
        claim: Optional[PendingClaim] = None,
        ledger: Optional[ClaimLedger] = None,
    ) -> Event:
        if self.application is not None:
            raise RuntimeError(f"job {self.job.name!r} has already been started")
        if self.job.kind is not JobKind.MALLEABLE:
            raise ValueError("MalleableRunner only runs malleable jobs")
        outcome = self.env.event()
        self.cluster_name = cluster_name
        self.env.process(self._start_process(cluster_name, processors, claim, ledger, outcome))
        return outcome

    def _claim_stub_jobs(self, count: int):
        """Submit *count* size-1 GRAM jobs; returns the granted ones (a generator)."""
        endpoint = self.multicluster.gram(self.cluster_name)
        submissions = [endpoint.submit(self.job.name, 1) for _ in range(count)]
        granted: List[GramJob] = []
        for submission in submissions:
            try:
                gram_job = yield submission
            except Exception:  # GramSubmissionError: that stub was refused
                continue
            granted.append(gram_job)
        return granted

    def _start_process(self, cluster_name, processors, claim, ledger, outcome):
        granted = yield from self._claim_stub_jobs(processors)
        self._settle(claim, ledger)
        if len(granted) < processors:
            # Claiming failed: give back whatever was obtained and let the
            # scheduler re-queue the job.
            endpoint = self.multicluster.gram(cluster_name)
            for gram_job in granted:
                endpoint.release(gram_job)
            if granted:
                self.callbacks.processors_released(cluster_name)
            self.job.state = JobState.QUEUED
            outcome.succeed(False)
            return

        self.gram_jobs.extend(granted)
        application = RunningApplication(
            self.env,
            self.job.profile,
            processors,
            job_id=self.job.name,
            adaptation_point_interval=self.adaptation_point_interval,
            rng=self.rng,
        )
        application.record.submit_time = self.job.submit_time
        self.application = application
        self.dynaco = Dynaco(
            self.env,
            decision=MalleabilityDecision(
                self.job.minimum_processors,
                self.job.maximum_processors,
                self.job.profile.constraint,
            ),
            planner=MalleabilityPlanner(),
            executor=AfpacExecutor(self.env, application),
            monitor=self.monitor,
        )
        self.job.start_time = self.env.now
        self.job.state = JobState.RUNNING
        self.job.single_component.cluster = cluster_name
        application.start()
        self.callbacks.job_started(self.job)
        outcome.succeed(True)

        record = yield application.completed
        if self._killed:
            # Aborted by a node failure (the remaining size fell below the
            # job's minimum): kill()/fail_job() own the cleanup.
            return
        self._finish(record)

    # -- fault tolerance ---------------------------------------------------------

    def survive_failure(self, lost: int) -> Event:
        """Shrink through a node failure: *lost* held processors just died.

        The paper's adaptation story made concrete: where a rigid job dies
        with the node, a malleable job whose minimum still fits gives the
        dead processors up and keeps computing.  The corresponding size-1
        GRAM jobs are released immediately (the nodes are gone — the caller
        has already marked them failed, so they cannot be re-promised) and a
        *mandatory* shrink is pushed through DYNACO so the application adapts
        down to what is left at its next adaptation point.

        Returns an event succeeding with the number of processors the
        application actually gave up (at least *lost*, more if its structural
        size constraint rounds further down).
        """
        done = self.env.event()
        application = self.application
        if (
            lost <= 0
            or application is None
            or application.is_finished
            or self.dynaco is None
            or lost > len(self.gram_jobs)
        ):
            done.succeed(0)
            return done
        # The dead stubs: released without the voluntary-release accounting —
        # nothing voluntary about a node failure.
        self._release_gram_jobs(self.gram_jobs[-lost:])
        self.env.process(self._survive_process(lost, done))
        return done

    def _survive_process(self, lost, done):
        application = self.application
        current = application.allocation
        event = self.monitor.on_shrink_message(self.env.now, lost, current, mandatory=True)
        result = yield self.dynaco.adapt(event, current)
        released = max(0, -result.accepted_change)
        if released > lost:
            # The size constraint rounded below the surviving size (e.g. FT
            # dropping to the next power of two): the application gave up
            # healthy processors too — release their GRAM jobs normally.
            extra = min(released - lost, len(self.gram_jobs))
            if extra > 0:
                self._release_gram_jobs(self.gram_jobs[-extra:])
        if released > 0:
            self.shrink_operations += 1
        done.succeed(released)

    # -- malleability operations -------------------------------------------------

    def grow(
        self,
        offered: int,
        *,
        claim: Optional[PendingClaim] = None,
        ledger: Optional[ClaimLedger] = None,
    ) -> Event:
        """Offer the application *offered* additional processors.

        Returns an event succeeding with the number of processors actually
        adopted (0 if the application declined, finished first, or the
        processors could not be claimed).
        """
        done = self.env.event()
        if (
            offered <= 0
            or self.application is None
            or self.application.is_finished
            or self.dynaco is None
        ):
            self._settle(claim, ledger)
            done.succeed(0)
            return done
        self.env.process(self._grow_process(offered, claim, ledger, done))
        return done

    def _grow_process(self, offered, claim, ledger, done):
        self._reconfiguring = True
        try:
            application = self.application
            endpoint = self.multicluster.gram(self.cluster_name)

            # How many of the offered processors would the application use?
            # (A pure preview: the real adaptation event is only published
            # once all new processors are actually held.)
            usable = self.preview_grow(offered)
            if usable == 0 or application.is_finished:
                self._settle(claim, ledger)
                done.succeed(0)
                return

            # Claim only what will be used; the rest of the offer is declined
            # up front (the scheduler keeps those processors available).
            granted = yield from self._claim_stub_jobs(usable)
            self._settle(claim, ledger)
            if not granted or application.is_finished:
                for gram_job in granted:
                    endpoint.release(gram_job)
                if granted:
                    self.voluntarily_released += len(granted)
                    self.callbacks.processors_released(self.cluster_name)
                done.succeed(0)
                return

            # With a partial grant the application re-decides on what it got
            # (FT may round a partial grant down to a smaller power of two).
            current = application.allocation
            adopted_extra = self.preview_grow(len(granted))
            surplus = granted[adopted_extra:]
            keep = granted[:adopted_extra]
            for gram_job in surplus:
                endpoint.release(gram_job)
            if surplus:
                self.voluntarily_released += len(surplus)
                self.callbacks.processors_released(self.cluster_name)
            if not keep:
                done.succeed(0)
                return

            # Recruit the stubs into application processes (fast path), then
            # let DYNACO execute the adaptation at the next adaptation point.
            # Only now is the grow message reflected as a monitor event: the
            # application is never suspended before all resources are held.
            for gram_job in keep:
                yield endpoint.recruit(gram_job)
            self.gram_jobs.extend(keep)

            grow_event = self.monitor.on_grow_message(
                self.env.now, len(keep), application.allocation
            )
            result = yield self.dynaco.adapt(grow_event, application.allocation)
            actually_added = max(0, result.accepted_change)
            if actually_added < len(keep):
                # The application finished (or adopted less) while we were
                # recruiting; release the stubs it will never use.
                unused = keep[actually_added:]
                self._release_gram_jobs(unused)
                self.voluntarily_released += len(unused)
            if actually_added > 0:
                self.grow_operations += 1
            done.succeed(actually_added)
        finally:
            self._reconfiguring = False

    def shrink(
        self,
        requested: int,
        *,
        mandatory: bool = True,
    ) -> Event:
        """Ask the application to give back *requested* processors.

        Returns an event succeeding with the number of processors actually
        released (after the application has reconfigured and the
        corresponding GRAM jobs have been released).
        """
        done = self.env.event()
        if (
            requested <= 0
            or self.application is None
            or self.application.is_finished
            or self.dynaco is None
        ):
            done.succeed(0)
            return done
        self.env.process(self._shrink_process(requested, mandatory, done))
        return done

    def _shrink_process(self, requested, mandatory, done):
        self._reconfiguring = True
        try:
            application = self.application
            current = application.allocation
            event = self.monitor.on_shrink_message(self.env.now, requested, current, mandatory)
            result = yield self.dynaco.adapt(event, current)
            released = max(0, -result.accepted_change)
            if released > 0:
                # Execution has already resumed inside the application; only
                # now are the GRAM jobs released (the paper's ordering).
                to_release = self.gram_jobs[-released:]
                self._release_gram_jobs(to_release)
                self.shrink_operations += 1
            done.succeed(released)
        finally:
            self._reconfiguring = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        allocation = self.current_allocation
        return (
            f"<MalleableRunner {self.job.name!r} on {self.cluster_name!r} "
            f"allocation={allocation} reconfiguring={self._reconfiguring}>"
        )
