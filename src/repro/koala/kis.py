"""The KOALA Information Service (KIS) and its providers.

KOALA's scheduler does not look at clusters directly; it consults the KIS,
which is fed by a Processor Information Provider (PIP), a Network Information
Provider (NIP) and a Replica Location Service (RLS).  Because the PIP is
polled *periodically*, the scheduler's view of idle processors can be
slightly stale — which is exactly how KOALA notices background load submitted
behind its back by local users, and why the paper's malleability manager is
triggered from the polling loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.cluster.multicluster import Multicluster
from repro.cluster.network import Link
from repro.sim.core import Environment


class ProcessorInformationProvider:
    """PIP: reports the number of idle processors of each cluster."""

    def __init__(self, multicluster: Multicluster) -> None:
        self.multicluster = multicluster
        #: Struct-of-arrays mirror of the clusters' counters; its idle view
        #: is maintained incrementally, so a poll is a plain dict copy
        #: instead of a property scan over every cluster object.
        self._state = getattr(multicluster, "state", None)

    def idle_processors(self) -> Dict[str, int]:
        """Current idle processors per cluster (ground truth at call time)."""
        if self._state is not None:
            return dict(self._state.idle_view())
        return {cluster.name: cluster.idle_processors for cluster in self.multicluster}

    def total_processors(self) -> Dict[str, int]:
        """Total processors per cluster."""
        return {cluster.name: cluster.total_processors for cluster in self.multicluster}


class NetworkInformationProvider:
    """NIP: reports link characteristics between sites."""

    def __init__(self, multicluster: Multicluster) -> None:
        self.multicluster = multicluster

    def link(self, source: str, destination: str) -> Link:
        """Current link estimate between two sites."""
        return self.multicluster.network.link(source, destination)

    def transfer_time(self, source: str, destination: str, megabytes: float) -> float:
        """Estimated transfer time of *megabytes* MB between two sites."""
        return self.multicluster.network.transfer_time(source, destination, megabytes)


class ReplicaLocationService:
    """RLS: maps logical file names to the clusters storing replicas."""

    def __init__(self, multicluster: Multicluster) -> None:
        self.multicluster = multicluster

    def sites(self, file_name: str) -> Set[str]:
        """Clusters holding a replica of *file_name*."""
        return self.multicluster.replica_sites(file_name)

    def register(self, file_name: str, cluster_name: str) -> None:
        """Register a new replica location."""
        self.multicluster.register_replica(file_name, cluster_name)


@dataclass
class KisSnapshot:
    """One poll of the information service."""

    time: float
    idle_processors: Dict[str, int]

    def total_idle(self) -> int:
        """System-wide idle processors at the time of the snapshot."""
        return sum(self.idle_processors.values())


class KoalaInformationService:
    """The KIS: periodically polled resource status used by the scheduler.

    Parameters
    ----------
    env, multicluster:
        Simulation environment and monitored system.
    poll_interval:
        Seconds between PIP polls.  The scheduler and the malleability
        manager react to each poll (subscribe with :meth:`on_poll`).
    """

    def __init__(
        self,
        env: Environment,
        multicluster: Multicluster,
        *,
        poll_interval: float = 15.0,
        first_poll_at: Optional[float] = None,
        defer_polling: bool = False,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.env = env
        self.multicluster = multicluster
        self.poll_interval = float(poll_interval)
        # Restore support: a checkpoint records the absolute time of the
        # next pending poll, and the restored service must re-join the
        # original poll grid exactly (``first_poll_at``), not start a new
        # grid at ``now + poll_interval``.
        self._first_poll_at = None if first_poll_at is None else float(first_poll_at)
        #: Absolute time of the next scheduled poll (checkpoint capture).
        self.next_poll_time = env.now + self.poll_interval
        self.pip = ProcessorInformationProvider(multicluster)
        self.nip = NetworkInformationProvider(multicluster)
        self.rls = ReplicaLocationService(multicluster)
        self._snapshot = KisSnapshot(time=env.now, idle_processors=self.pip.idle_processors())
        self._subscribers: List[Callable[[KisSnapshot], None]] = []
        #: Immutable snapshot of the subscriber list, rebuilt on ``on_poll``;
        #: the poll loop iterates it without a defensive per-poll copy.
        self._subscriber_snapshot: tuple = ()
        # ``defer_polling`` lets checkpoint restore start the poll process at
        # a chosen point of the reconstruction, so the poll timeout's event
        # id falls into the same relative slot it held in the original run.
        self._poll_process = None if defer_polling else env.process(self._poll_loop())

    # -- polling --------------------------------------------------------------

    def start_polling(self) -> None:
        """Start the deferred poll loop (no-op when already running)."""
        if self._poll_process is None:
            self._poll_process = self.env.process(self._poll_loop())

    def on_poll(self, callback: Callable[[KisSnapshot], None]) -> None:
        """Register *callback* to be invoked after every PIP poll."""
        self._subscribers.append(callback)
        self._subscriber_snapshot = tuple(self._subscribers)

    def poll_now(self) -> KisSnapshot:
        """Force an immediate poll (used when jobs finish, to react faster)."""
        self._snapshot = snapshot = KisSnapshot(
            time=self.env.now, idle_processors=self.pip.idle_processors()
        )
        for callback in self._subscriber_snapshot:
            callback(snapshot)
        return snapshot

    def _poll_loop(self):
        first = self._first_poll_at
        if first is not None:
            self.next_poll_time = first
            yield self.env.timeout_at(first)
            self.poll_now()
        while True:
            self.next_poll_time = self.env.now + self.poll_interval
            yield self.env.timeout(self.poll_interval)
            self.poll_now()

    # -- queries ---------------------------------------------------------------

    @property
    def snapshot(self) -> KisSnapshot:
        """The most recent snapshot (possibly stale by up to ``poll_interval``)."""
        return self._snapshot

    def idle_processors(self, fresh: bool = False) -> Dict[str, int]:
        """Idle processors per cluster.

        With ``fresh=True`` the PIP is queried directly (the scheduler does
        this right before claiming to reduce claim failures); otherwise the
        last snapshot is returned.
        """
        if fresh:
            return self.pip.idle_processors()
        return dict(self._snapshot.idle_processors)

    def idle_in(self, cluster_name: str, fresh: bool = False) -> int:
        """Idle processors of one cluster."""
        return self.idle_processors(fresh=fresh).get(cluster_name, 0)
