"""The KOALA placement queue.

Jobs whose placement attempt fails are appended to the tail of the placement
queue.  The scheduler regularly scans the queue from head to tail to see
whether any job can now be placed; each failed attempt increments the job's
try counter, and once it exceeds a threshold the submission fails
(Section IV-A of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.koala.job import Job


@dataclass
class QueuedJob:
    """A queue entry: the job plus its queueing metadata."""

    job: Job
    enqueued_at: float
    tries: int = 0
    last_failure_reason: str = ""


@dataclass
class PlacementQueue:
    """FIFO queue of jobs awaiting placement, with a retry threshold.

    Parameters
    ----------
    max_tries:
        Number of failed placement attempts after which a job's submission
        fails.  ``None`` retries forever (useful for experiments where jobs
        must never be dropped, e.g. the paper's workloads of 300 jobs that
        all eventually run).
    """

    max_tries: Optional[int] = None
    _entries: List[QueuedJob] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[QueuedJob]:
        return iter(list(self._entries))

    def __contains__(self, job: Job) -> bool:
        return any(entry.job is job for entry in self._entries)

    @property
    def jobs(self) -> List[Job]:
        """The queued jobs, head first."""
        return [entry.job for entry in self._entries]

    @property
    def head(self) -> Optional[QueuedJob]:
        """The entry at the head of the queue (``None`` when empty)."""
        return self._entries[0] if self._entries else None

    def enqueue(self, job: Job, time: float) -> QueuedJob:
        """Append *job* to the tail of the queue."""
        if job in self:
            raise ValueError(f"job {job.name!r} is already queued")
        entry = QueuedJob(job=job, enqueued_at=time)
        self._entries.append(entry)
        return entry

    def remove(self, job: Job) -> None:
        """Remove *job* from the queue (e.g. after successful placement)."""
        for entry in self._entries:
            if entry.job is job:
                self._entries.remove(entry)
                return
        raise ValueError(f"job {job.name!r} is not queued")

    def record_failure(self, job: Job, reason: str = "") -> bool:
        """Record a failed placement try for *job*.

        Returns ``True`` if the job has exhausted its tries and must be
        abandoned (it is removed from the queue in that case).
        """
        for entry in self._entries:
            if entry.job is job:
                entry.tries += 1
                entry.last_failure_reason = reason
                job.placement_tries = entry.tries
                if self.max_tries is not None and entry.tries >= self.max_tries:
                    self._entries.remove(entry)
                    return True
                return False
        raise ValueError(f"job {job.name!r} is not queued")

    def requeue_at_tail(self, job: Job) -> None:
        """Move *job* to the tail of the queue (after a failed try)."""
        for entry in self._entries:
            if entry.job is job:
                self._entries.remove(entry)
                self._entries.append(entry)
                return
        raise ValueError(f"job {job.name!r} is not queued")
