"""KOALA — the multicluster grid scheduler.

This package reproduces the KOALA architecture described in Section IV-A of
the paper and its extension for malleability described in Section V:

* :mod:`repro.koala.job` — the job model (jobs made of components; rigid,
  moldable and malleable jobs following the classification of Feitelson &
  Rudolph);
* :mod:`repro.koala.placement` — the placement policies (Worst-Fit,
  Close-to-Files, Cluster Minimization and Flexible Cluster Minimization);
* :mod:`repro.koala.queue` — the placement queue with its retry threshold;
* :mod:`repro.koala.kis` — the KOALA information service with its processor,
  network and replica-location providers, polled periodically so background
  load that bypasses KOALA is still taken into account;
* :mod:`repro.koala.claiming` — the processor-claiming ledger that keeps
  track of processors promised to placements and grows that have not yet
  been claimed through GRAM;
* :mod:`repro.koala.runners` — the runners framework and the runner for
  rigid/moldable jobs;
* :mod:`repro.koala.mrunner` — the Malleable Runner (MRunner) embedding a
  DYNACO instance per application;
* :mod:`repro.koala.scheduler` — the central scheduler (co-allocator +
  processor claimer) tying everything together: an event-driven core that
  emits the typed events of :mod:`repro.policies.hooks` to which every
  policy axis is subscribed uniformly.

Placement policies are registered in the unified policy registry
(:mod:`repro.policies`); configurations reference them by name, optionally
parameterised (``"EASY?reserve_depth=2"``) — see :mod:`repro.refs` for
the reference grammar shared by every configuration surface.
"""

from repro.koala.job import (
    Job,
    JobComponent,
    JobKind,
    JobState,
)
from repro.koala.placement import (
    ClusterMinimization,
    CloseToFiles,
    FlexibleClusterMinimization,
    PlacementDecision,
    PlacementPolicy,
    WorstFit,
)
from repro.koala.queue import PlacementQueue, QueuedJob
from repro.koala.kis import (
    KoalaInformationService,
    NetworkInformationProvider,
    ProcessorInformationProvider,
    ReplicaLocationService,
)
from repro.koala.claiming import ClaimLedger
from repro.koala.runners import JobRunner, RigidRunner, RunnersFramework
from repro.koala.mrunner import MalleableRunner
from repro.koala.scheduler import KoalaScheduler, SchedulerConfig

__all__ = [
    "ClaimLedger",
    "CloseToFiles",
    "ClusterMinimization",
    "FlexibleClusterMinimization",
    "Job",
    "JobComponent",
    "JobKind",
    "JobRunner",
    "JobState",
    "KoalaInformationService",
    "KoalaScheduler",
    "MalleableRunner",
    "NetworkInformationProvider",
    "PlacementDecision",
    "PlacementPolicy",
    "PlacementQueue",
    "ProcessorInformationProvider",
    "QueuedJob",
    "ReplicaLocationService",
    "RigidRunner",
    "RunnersFramework",
    "SchedulerConfig",
    "WorstFit",
]
