"""Processor-claiming ledger.

KOALA's processor claimer (PC) makes sure that processors selected by a
placement decision are still available when the job actually starts; without
reservations it uses an incremental claiming policy.  In this reproduction
claims go through GRAM with a non-zero latency, so between "the scheduler
decided to use these processors" and "GRAM actually holds them" there is a
window during which the same idle processors must not be promised twice —
neither to another placement nor to a grow operation of the malleability
manager.

:class:`ClaimLedger` closes that window: the scheduler and the malleability
manager register *pending* processor counts per cluster when they start
claiming and clear them once GRAM has either granted or refused the
processors.  The effective number of idle processors any decision may use is
``cluster idle - pending``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict


_claim_ids = count(1)


@dataclass
class PendingClaim:
    """Processors promised on a cluster but not yet granted by GRAM."""

    cluster: str
    processors: int
    owner: str
    claim_id: int = field(default_factory=lambda: next(_claim_ids))


class ClaimLedger:
    """Tracks processors that are promised but not yet claimed, per cluster.

    Alongside the claim-id map, the ledger maintains a per-cluster running
    total of pending processors, so the ``effective idle`` view consulted by
    every placement and grow decision is a dictionary lookup instead of a
    scan over all outstanding claims.
    """

    def __init__(self) -> None:
        self._pending: Dict[int, PendingClaim] = {}
        self._cluster_pending: Dict[str, int] = {}
        #: Bound struct-of-arrays state (see :meth:`bind_state`); when set,
        #: every pending-total change is mirrored into its ``pending`` column
        #: so the effective-idle view stays incrementally maintained.
        self._state = None

    def bind_state(self, state) -> None:
        """Mirror per-cluster pending totals into *state* from now on."""
        self._state = state
        for cluster, pending in self._cluster_pending.items():
            state.update_pending(cluster, pending)

    # -- registration ------------------------------------------------------

    def reserve(self, cluster: str, processors: int, owner: str) -> PendingClaim:
        """Record that *processors* on *cluster* are being claimed for *owner*."""
        if processors < 1:
            raise ValueError("a reservation must cover at least one processor")
        claim = PendingClaim(cluster=cluster, processors=int(processors), owner=owner)
        self._pending[claim.claim_id] = claim
        pending = self._cluster_pending
        pending[cluster] = total = pending.get(cluster, 0) + claim.processors
        if self._state is not None:
            self._state.update_pending(cluster, total)
        return claim

    def settle(self, claim: PendingClaim) -> None:
        """Clear *claim* (GRAM has granted or definitively refused it)."""
        removed = self._pending.pop(claim.claim_id, None)
        if removed is not None:
            pending = self._cluster_pending
            pending[removed.cluster] = total = pending[removed.cluster] - removed.processors
            if self._state is not None:
                self._state.update_pending(removed.cluster, total)

    def adjust(self, claim: PendingClaim, processors: int) -> None:
        """Change the size of a pending claim (e.g. partial grant so far)."""
        if processors <= 0:
            self.settle(claim)
            return
        if claim.claim_id in self._pending:
            pending = self._cluster_pending
            pending[claim.cluster] = total = (
                pending[claim.cluster] + int(processors) - claim.processors
            )
            claim.processors = int(processors)
            if self._state is not None:
                self._state.update_pending(claim.cluster, total)

    # -- queries -------------------------------------------------------------

    def pending_on(self, cluster: str) -> int:
        """Processors currently promised but unclaimed on *cluster*."""
        return self._cluster_pending.get(cluster, 0)

    def pending_total(self) -> int:
        """Processors currently promised but unclaimed system-wide."""
        return sum(self._cluster_pending.values())

    def effective_idle(self, idle_processors: Dict[str, int]) -> Dict[str, int]:
        """Idle view with pending claims subtracted (never below zero)."""
        pending = self._cluster_pending
        return {
            name: max(0, idle - pending.get(name, 0))
            for name, idle in idle_processors.items()
        }

    def effective_idle_in(self, cluster: str, idle: int) -> int:
        """Effective idle processors of a single cluster."""
        return max(0, idle - self._cluster_pending.get(cluster, 0))

    def owners_on(self, cluster: str) -> Dict[str, int]:
        """Pending processors per owner on *cluster* (for diagnostics)."""
        owners: Dict[str, int] = {}
        for claim in self._pending.values():
            if claim.cluster == cluster:
                owners[claim.owner] = owners.get(claim.owner, 0) + claim.processors
        return owners

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ClaimLedger {self.pending_total()} processors pending in {len(self)} claims>"
