"""KOALA placement policies.

A placement policy decides, for each component of a job, which cluster it
should run in, based on the information-service view of idle processors (and
for some policies, file locations and network estimates).  The policies
reproduced here are the ones listed in Section IV-A of the paper:

* **Worst-Fit (WF)** — place each component in the cluster with the largest
  number of idle processors; automatic load balancing, used for all the
  paper's malleability experiments;
* **Close-to-Files (CF)** — favour clusters that already hold the component's
  input files, then clusters to which transferring them is fastest;
* **Cluster Minimization (CM)** — minimise the number of clusters a
  co-allocated job is spread over;
* **Flexible Cluster Minimization (FCM)** — additionally split the job into
  components sized according to the numbers of idle processors to reduce the
  queue time.

Policies never mutate cluster state; they only return a
:class:`PlacementDecision` that the scheduler then tries to claim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.multicluster import Multicluster
from repro.koala.job import Job, JobComponent
from repro.policies.registry import register


@dataclass
class PlacementDecision:
    """Outcome of one placement attempt.

    ``placements`` maps component index to the chosen cluster name and the
    number of processors to claim for it there.  ``success`` is ``False``
    when the policy could not find room for every component, in which case
    ``reason`` explains why (used in failure diagnostics and tests).

    ``deferred`` marks a *deliberate hold* rather than a capacity failure:
    the job fits but the policy chose not to start it yet (e.g. EASY
    backfilling protecting a head reservation).  Deferred outcomes leave the
    job queued without counting against its placement-retry budget.
    """

    job: Job
    placements: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    success: bool = True
    reason: str = ""
    deferred: bool = False

    @property
    def clusters_used(self) -> List[str]:
        """The distinct clusters this decision spans."""
        return sorted({cluster for cluster, _ in self.placements.values()})

    def processors_on(self, cluster_name: str) -> int:
        """Total processors this decision claims on *cluster_name*."""
        return sum(
            processors
            for cluster, processors in self.placements.values()
            if cluster == cluster_name
        )

    @classmethod
    def failure(cls, job: Job, reason: str) -> "PlacementDecision":
        """A failed placement attempt."""
        return cls(job=job, placements={}, success=False, reason=reason)

    @classmethod
    def deferral(cls, job: Job, reason: str) -> "PlacementDecision":
        """A deliberate hold: the policy keeps *job* queued, penalty-free."""
        return cls(job=job, placements={}, success=False, reason=reason, deferred=True)


class PlacementPolicy(ABC):
    """Base class of placement policies."""

    #: Symbolic name used in configuration files and experiment descriptions.
    name: str = "abstract"

    @abstractmethod
    def place(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        multicluster: Multicluster,
    ) -> PlacementDecision:
        """Try to place *job* given the per-cluster *idle_processors* view."""

    # -- helpers shared by concrete policies ---------------------------------

    @staticmethod
    def _component_requests(job: Job) -> List[Tuple[int, JobComponent]]:
        """Component indices and components, largest first (helps packing)."""
        indexed = list(enumerate(job.components))
        indexed.sort(key=lambda pair: pair[1].processors, reverse=True)
        return indexed


@register("placement", "WF", aliases=("WORST-FIT",))
class WorstFit(PlacementPolicy):
    """Place each component in the cluster with the most idle processors.

    The paper: "The advantage of WF is its automatic load-balancing
    behaviour, the disadvantage is that large (components of) jobs have less
    chance of successful placement because WF tends to reduce the number of
    idle processors per cluster."
    """

    name = "WF"

    def place(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        multicluster: Multicluster,
    ) -> PlacementDecision:
        components = job.components
        if len(components) == 1:
            # Single-component jobs (all of the paper's workloads) on the
            # live effective-idle view: a vectorized argmax over the
            # struct-of-arrays state, with the same (-idle, name) tie-break.
            state = getattr(multicluster, "state", None)
            if state is not None and idle_processors is state.effective_view():
                component = components[0]
                chosen = state.select_worst_fit(component.processors)
                if chosen is None:
                    return PlacementDecision.failure(
                        job,
                        f"no cluster has {component.processors} idle processors "
                        f"for component 0",
                    )
                decision = PlacementDecision(job=job)
                decision.placements[0] = (chosen, component.processors)
                return decision
        remaining = dict(idle_processors)
        decision = PlacementDecision(job=job)
        for index, component in self._component_requests(job):
            candidates = [
                (idle, name) for name, idle in remaining.items() if idle >= component.processors
            ]
            if not candidates:
                return PlacementDecision.failure(
                    job,
                    f"no cluster has {component.processors} idle processors "
                    f"for component {index}",
                )
            candidates.sort(key=lambda pair: (-pair[0], pair[1]))
            _, chosen = candidates[0]
            decision.placements[index] = (chosen, component.processors)
            remaining[chosen] -= component.processors
        return decision


@register("placement", "CF", aliases=("CLOSE-TO-FILES",))
class CloseToFiles(PlacementPolicy):
    """Favour clusters holding the component's input files.

    Clusters already storing the input files are preferred; among the others,
    the cluster with the smallest estimated transfer time wins.  Ties are
    broken by idle processors (worst-fit style) to retain load balancing.
    """

    name = "CF"

    def __init__(self, file_size_mb: float = 500.0) -> None:
        if file_size_mb < 0:
            raise ValueError("file_size_mb must be non-negative")
        self.file_size_mb = float(file_size_mb)

    def place(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        multicluster: Multicluster,
    ) -> PlacementDecision:
        remaining = dict(idle_processors)
        decision = PlacementDecision(job=job)
        for index, component in self._component_requests(job):
            feasible = [
                name for name, idle in remaining.items() if idle >= component.processors
            ]
            if not feasible:
                return PlacementDecision.failure(
                    job,
                    f"no cluster has {component.processors} idle processors "
                    f"for component {index}",
                )
            chosen = self._rank(component, feasible, remaining, multicluster)[0]
            decision.placements[index] = (chosen, component.processors)
            remaining[chosen] -= component.processors
        return decision

    def _rank(
        self,
        component: JobComponent,
        feasible: Sequence[str],
        remaining: Dict[str, int],
        multicluster: Multicluster,
    ) -> List[str]:
        def transfer_cost(cluster_name: str) -> float:
            total = 0.0
            for file_name in component.input_files:
                sites = multicluster.replica_sites(file_name)
                if not sites or cluster_name in sites:
                    continue
                best = multicluster.network.best_source(
                    cluster_name, sites, self.file_size_mb
                )
                if best is not None:
                    total += best[1]
            return total

        return sorted(
            feasible,
            key=lambda name: (transfer_cost(name), -remaining[name], name),
        )


@register("placement", "CM", aliases=("CLUSTER-MINIMIZATION",))
class ClusterMinimization(PlacementPolicy):
    """Minimise the number of clusters a co-allocated job is spread over."""

    name = "CM"

    def place(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        multicluster: Multicluster,
    ) -> PlacementDecision:
        # Greedily assign components (largest first) to the cluster that is
        # already used by this job and still fits them; only open a new
        # cluster (the one with the most idle processors) when unavoidable.
        remaining = dict(idle_processors)
        used: List[str] = []
        decision = PlacementDecision(job=job)
        for index, component in self._component_requests(job):
            target: Optional[str] = None
            for name in used:
                if remaining[name] >= component.processors:
                    target = name
                    break
            if target is None:
                candidates = [
                    (idle, name)
                    for name, idle in remaining.items()
                    if idle >= component.processors and name not in used
                ]
                if not candidates:
                    return PlacementDecision.failure(
                        job,
                        f"no cluster can host component {index} "
                        f"({component.processors} processors)",
                    )
                candidates.sort(key=lambda pair: (-pair[0], pair[1]))
                target = candidates[0][1]
                used.append(target)
            decision.placements[index] = (target, component.processors)
            remaining[target] -= component.processors
        return decision


@register("placement", "FCM", aliases=("FLEXIBLE-CLUSTER-MINIMIZATION",))
class FlexibleClusterMinimization(PlacementPolicy):
    """Cluster minimisation that may re-split the job to fit idle processors.

    The flexible variant treats the job's total processor request as a budget
    that can be split into differently sized components according to the idle
    processors of the clusters, which decreases the queue time of large jobs
    at the price of more inter-cluster communication.
    """

    name = "FCM"

    def __init__(self, min_component_size: int = 1) -> None:
        if min_component_size < 1:
            raise ValueError("min_component_size must be >= 1")
        self.min_component_size = int(min_component_size)

    def place(
        self,
        job: Job,
        idle_processors: Dict[str, int],
        multicluster: Multicluster,
    ) -> PlacementDecision:
        total = job.total_processors
        # Fill clusters in decreasing order of idle processors.
        candidates = sorted(idle_processors.items(), key=lambda pair: (-pair[1], pair[0]))
        decision = PlacementDecision(job=job)
        outstanding = total
        component_index = 0
        for name, idle in candidates:
            if outstanding <= 0:
                break
            take = min(idle, outstanding)
            if take < self.min_component_size:
                continue
            decision.placements[component_index] = (name, take)
            component_index += 1
            outstanding -= take
        if outstanding > 0:
            return PlacementDecision.failure(
                job,
                f"only {total - outstanding} of {total} processors available system-wide",
            )
        return decision
