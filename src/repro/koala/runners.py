"""The KOALA runners framework and the runner for rigid jobs.

Runners are the auxiliary tools through which users submit jobs and through
which the scheduler controls their execution; different application types
have different runners, all built on a common framework that interfaces them
with the centralized scheduler (Figure 1 of the paper).  The malleable runner
lives in :mod:`repro.koala.mrunner`; this module provides the shared base
class and the runner used for rigid (and moldable) jobs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Protocol

import numpy as np

from repro.apps.runtime import ExecutionRecord, RunningApplication
from repro.cluster.gram import GramJob
from repro.cluster.multicluster import Multicluster
from repro.koala.claiming import ClaimLedger, PendingClaim
from repro.koala.job import Job, JobKind, JobState
from repro.sim.core import Environment
from repro.sim.events import Event


class SchedulerCallbacks(Protocol):
    """The scheduler-side interface runners report back to."""

    def job_started(self, job: Job) -> None:
        """Called once the job's application has started executing."""

    def job_finished(self, job: Job, record: ExecutionRecord) -> None:
        """Called once the job's application has finished and released everything."""

    def job_failed(self, job: Job, reason: str) -> None:
        """Called when the runner definitively gives up on the job."""

    def processors_released(self, cluster_name: str) -> None:
        """Called whenever the runner returns processors to *cluster_name*."""


class JobRunner(ABC):
    """Base class of runners: claims processors, runs the application, reports back.

    Parameters
    ----------
    env, job, multicluster:
        Simulation environment, the job to run and the system to run it on.
    callbacks:
        Scheduler-side callbacks (see :class:`SchedulerCallbacks`).
    adaptation_point_interval:
        Passed through to the application runtime (only meaningful for
        malleable applications).
    rng:
        Random stream used for application-side variability.
    """

    def __init__(
        self,
        env: Environment,
        job: Job,
        multicluster: Multicluster,
        callbacks: SchedulerCallbacks,
        *,
        adaptation_point_interval: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.env = env
        self.job = job
        self.multicluster = multicluster
        self.callbacks = callbacks
        self.adaptation_point_interval = adaptation_point_interval
        self.rng = rng
        self.cluster_name: Optional[str] = None
        self.application: Optional[RunningApplication] = None
        self.gram_jobs: List[GramJob] = []
        #: Set by :meth:`kill`; tells the start process not to report the
        #: aborted execution as a completion.
        self._killed = False
        #: Succeeds with the job's :class:`ExecutionRecord` when it finishes.
        self.completed: Event = env.event()

    # -- interface used by the scheduler ------------------------------------

    @abstractmethod
    def start(
        self,
        cluster_name: str,
        processors: int,
        *,
        claim: Optional[PendingClaim] = None,
        ledger: Optional[ClaimLedger] = None,
    ) -> Event:
        """Claim *processors* on *cluster_name* and start the application.

        Returns an event that succeeds with ``True`` once the application is
        running, or with ``False`` if claiming failed (in which case any
        partially claimed processors have been released and the scheduler
        should re-queue the job).  The optional *claim*/*ledger* pair is
        settled as soon as the claiming outcome is known.
        """

    @property
    def current_allocation(self) -> int:
        """Processors the job currently holds."""
        if self.application is not None and not self.application.is_finished:
            return self.application.allocation
        return 0

    @property
    def is_running(self) -> bool:
        """Whether the application is currently executing."""
        return self.application is not None and self.application.is_running

    @property
    def start_time(self) -> Optional[float]:
        """When the application started executing (``None`` before that)."""
        return self.job.start_time

    @property
    def killed(self) -> bool:
        """Whether this runner's execution was killed by a node failure."""
        return self._killed

    def kill(self, reason: str) -> None:
        """Abort the execution because processors under it failed.

        Aborts the application (whatever work it did is lost) and releases
        every GRAM job still held — the scheduler decides afterwards whether
        the job is resubmitted or abandoned (see
        :meth:`~repro.koala.scheduler.KoalaScheduler.fail_job`).  Idempotent.
        """
        if self._killed:
            return
        self._killed = True
        self.job.failure_reason = reason
        application = self.application
        if application is not None and not application.is_finished:
            application.abort()
        self._release_gram_jobs(list(self.gram_jobs))

    # -- shared helpers ---------------------------------------------------------

    def _settle(self, claim: Optional[PendingClaim], ledger: Optional[ClaimLedger]) -> None:
        if claim is not None and ledger is not None:
            ledger.settle(claim)

    def _release_gram_jobs(self, jobs: List[GramJob]) -> None:
        if not jobs or self.cluster_name is None:
            return
        endpoint = self.multicluster.gram(self.cluster_name)
        for gram_job in jobs:
            endpoint.release(gram_job)
            if gram_job in self.gram_jobs:
                self.gram_jobs.remove(gram_job)
        self.callbacks.processors_released(self.cluster_name)

    def _finish(self, record: ExecutionRecord) -> None:
        self.job.finish_time = self.env.now
        self.job.state = JobState.FINISHED
        self._release_gram_jobs(list(self.gram_jobs))
        if not self.completed.triggered:
            self.completed.succeed(record)
        self.callbacks.job_finished(self.job, record)

    def _fail(self, reason: str) -> None:
        self.job.state = JobState.FAILED
        self.job.failure_reason = reason
        self._release_gram_jobs(list(self.gram_jobs))
        self.callbacks.job_failed(self.job, reason)


class RigidRunner(JobRunner):
    """Runner for rigid and moldable jobs: one GRAM job, fixed size."""

    def start(
        self,
        cluster_name: str,
        processors: int,
        *,
        claim: Optional[PendingClaim] = None,
        ledger: Optional[ClaimLedger] = None,
    ) -> Event:
        if self.application is not None:
            raise RuntimeError(f"job {self.job.name!r} has already been started")
        if self.job.kind is JobKind.MALLEABLE:
            raise ValueError("RigidRunner cannot run malleable jobs")
        outcome = self.env.event()
        self.cluster_name = cluster_name
        self.env.process(self._start_process(cluster_name, processors, claim, ledger, outcome))
        return outcome

    def _start_process(self, cluster_name, processors, claim, ledger, outcome):
        endpoint = self.multicluster.gram(cluster_name)
        submission = endpoint.submit(self.job.name, processors)
        try:
            gram_job = yield submission
        except Exception as error:  # GramSubmissionError
            self._settle(claim, ledger)
            self.job.state = JobState.QUEUED
            outcome.succeed(False)
            _ = error
            return
        self._settle(claim, ledger)
        self.gram_jobs.append(gram_job)

        application = RunningApplication(
            self.env,
            self.job.profile,
            processors,
            job_id=self.job.name,
            adaptation_point_interval=self.adaptation_point_interval,
            rng=self.rng,
        )
        application.record.submit_time = self.job.submit_time
        self.application = application
        self.job.start_time = self.env.now
        self.job.state = JobState.RUNNING
        self.job.single_component.cluster = cluster_name
        application.start()
        self.callbacks.job_started(self.job)
        outcome.succeed(True)

        record = yield application.completed
        if self._killed:
            # Aborted by a node failure: kill()/fail_job() own the cleanup
            # and the (possible) resubmission; this execution never finished.
            return
        self._finish(record)


class RunnersFramework:
    """Creates the appropriate runner for each submitted job.

    The framework is the piece of KOALA that lets new application types be
    supported by plugging in new runners; registering a custom runner class
    for a job kind is all that is needed.
    """

    def __init__(
        self,
        env: Environment,
        multicluster: Multicluster,
        callbacks: SchedulerCallbacks,
        *,
        adaptation_point_interval: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.env = env
        self.multicluster = multicluster
        self.callbacks = callbacks
        self.adaptation_point_interval = adaptation_point_interval
        self.rng = rng
        self._runner_classes = {
            JobKind.RIGID: RigidRunner,
            JobKind.MOLDABLE: RigidRunner,
        }

    def register_runner_class(self, kind: JobKind, runner_class) -> None:
        """Use *runner_class* for jobs of *kind*."""
        self._runner_classes[kind] = runner_class

    def create_runner(self, job: Job) -> JobRunner:
        """Instantiate the runner responsible for *job*."""
        try:
            runner_class = self._runner_classes[job.kind]
        except KeyError:
            raise ValueError(f"no runner registered for {job.kind!r}") from None
        return runner_class(
            self.env,
            job,
            self.multicluster,
            self.callbacks,
            adaptation_point_interval=self.adaptation_point_interval,
            rng=self.rng,
        )
