"""The KOALA scheduler extended with malleability support.

The scheduler ties everything together: it receives job submissions through
the runners framework, places jobs on clusters with one of the placement
policies, keeps unplaceable jobs in the placement queue with a retry
threshold, and periodically polls the KOALA information service (so
background load is accounted for).

Since the policy-API redesign the scheduler is an *event-driven core*: it
emits the typed events of :mod:`repro.policies.hooks` (``job_submitted``,
``job_placed``, ``job_started``, ``job_ended``, ``processors_freed``,
``kis_updated``) through a :class:`~repro.policies.hooks.HookDispatcher`, and
all three policy axes — the placement policy, the malleability policy and the
job-management approach — are subscribed to it uniformly.  The PRA/PWA
approaches map the trigger events onto their job-management round; policies
that need scheduler state (such as the EASY-backfilling placement policy)
capture it via ``on_attach`` and their own event hooks.  Policies are
resolved through the unified registry (:mod:`repro.policies.registry`), so
configurations may name them (``"WF"``), parameterise them
(``"EASY?reserve_depth=2"``) or inject constructed instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.apps.runtime import ExecutionRecord
from repro.cluster.multicluster import Multicluster
from repro.koala.claiming import ClaimLedger
from repro.koala.job import Job, JobKind, JobState
from repro.koala.kis import KisSnapshot, KoalaInformationService
from repro.koala.mrunner import MalleableRunner
from repro.koala.placement import PlacementPolicy
from repro.koala.queue import PlacementQueue
from repro.koala.runners import JobRunner, RunnersFramework
from repro.policies.hooks import (
    HookDispatcher,
    JobEnded,
    JobFailed,
    JobPlaced,
    JobStarted,
    JobSubmitted,
    KisUpdated,
    ProcessorsFreed,
    TriggerOnSchedulingEvents,
)
from repro.policies.registry import PolicySpec, build_policy, spec_string
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams

#: A policy reference as accepted by the configuration: a registered name
#: (``"WF"``), a parameterised form (``"EASY?reserve_depth=2"`` or a
#: mapping), a :class:`~repro.policies.registry.PolicySpec`, or an
#: already-constructed policy instance.
PolicyRef = Union[str, dict, PolicySpec, object]


def _normalize_policy_field(kind: str, value) -> object:
    """Validate and canonicalise one policy field at config construction.

    Strings, mappings and :class:`PolicySpec`\\ s are parsed against the
    registry — so a typo'd name fails *here*, with the registered names
    listed, not deep inside ``KoalaScheduler.__init__`` — and normalised to
    their canonical string form.  ``None`` and constructed instances pass
    through unchanged.
    """
    if value is None or not isinstance(value, (str, dict, PolicySpec)):
        return value
    return spec_string(kind, value)


@dataclass
class SchedulerConfig:
    """Configuration of one scheduler instance.

    Attributes
    ----------
    placement_policy:
        Placement policy reference (``"WF"``, ``"CF"``, ``"CM"``, ``"FCM"``,
        ``"EASY"``, a parameterised form such as ``"EASY?reserve_depth=2"``,
        or an instance).  The paper's experiments all use Worst-Fit.
    malleability_policy:
        Malleability management policy reference (``"FPSMA"``, ``"EGS"``,
        ``"EQUIPARTITION"``, ``"FOLDING"``, ``"AVERAGE_STEAL"``, ...) or
        ``None`` to disable malleability management entirely.
    approach:
        Job-management approach reference (``"PRA"`` or ``"PWA"``).
    grow_threshold:
        Idle processors per cluster that grow operations must leave free for
        local users.
    grow_offer_mode:
        ``"released"`` (default) offers only processors that became available
        since the last trigger; ``"idle"`` offers all effectively idle
        processors (see
        :class:`~repro.malleability.manager.MalleabilityManager`).
    poll_interval:
        Period (seconds) of the KOALA information-service poll that triggers
        job management.
    max_placement_tries:
        Placement retries before a submission fails (``None`` = unlimited,
        which the paper's experiments effectively use since all 300 jobs run).
    adaptation_point_interval:
        Spacing of AFPAC adaptation points inside applications.

    Policy references are validated against the unified registry when the
    configuration is constructed; unknown names raise immediately with the
    registered names listed.
    """

    placement_policy: PolicyRef = "WF"
    malleability_policy: Optional[PolicyRef] = "FPSMA"
    approach: PolicyRef = "PRA"
    grow_threshold: int = 0
    grow_offer_mode: str = "released"
    poll_interval: float = 15.0
    max_placement_tries: Optional[int] = None
    adaptation_point_interval: float = 2.0
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.placement_policy = _normalize_policy_field(
            "placement", self.placement_policy
        )
        self.malleability_policy = _normalize_policy_field(
            "malleability", self.malleability_policy
        )
        self.approach = _normalize_policy_field("approach", self.approach)


class _QueueScanHooks(TriggerOnSchedulingEvents):
    """Default job management when malleability is disabled: scan the queue.

    Subscribed instead of a :class:`JobManagementApproach` when no
    malleability policy is configured; the shared
    :class:`~repro.policies.hooks.TriggerOnSchedulingEvents` wiring keeps
    the trigger conditions identical in both modes (``trigger()`` falls back
    to a plain queue scan when no approach is installed).
    """


class KoalaScheduler:
    """The central KOALA scheduler (co-allocator + processor claimer).

    Parameters
    ----------
    env, multicluster:
        Simulation environment and the system to schedule on.
    config:
        Scheduler configuration (defaults reproduce the paper's setup:
        Worst-Fit placement, FPSMA policy, PRA approach).
    streams:
        Named random streams for application-side variability.

    Attributes
    ----------
    hooks:
        The :class:`~repro.policies.hooks.HookDispatcher` through which the
        scheduler emits its typed events.  The placement policy, the
        malleability policy and the job-management approach are subscribed in
        that order; additional observers may subscribe freely.
    """

    def __init__(
        self,
        env: Environment,
        multicluster: Multicluster,
        config: Optional[SchedulerConfig] = None,
        *,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.env = env
        self.multicluster = multicluster
        self.config = config or SchedulerConfig()
        self.streams = streams or RandomStreams(seed=0)

        self.hooks = HookDispatcher(self)
        self.placement_policy: PlacementPolicy = build_policy(
            "placement", self.config.placement_policy
        )
        self.kis = KoalaInformationService(
            env,
            multicluster,
            poll_interval=self.config.poll_interval,
            # Checkpoint restore passes the absolute time of the next poll so
            # a resumed run re-joins the original poll grid exactly.
            first_poll_at=self.config.extra.get("kis_first_poll_at"),
            defer_polling=bool(self.config.extra.get("kis_defer_polling", False)),
        )
        self.ledger = ClaimLedger()
        #: Struct-of-arrays state of the multicluster; the ledger mirrors its
        #: pending totals into it, which keeps ``state.effective_view()`` —
        #: the view every placement and grow decision reads — incrementally
        #: maintained instead of rebuilt per query.
        self._state = multicluster.state
        self.ledger.bind_state(self._state)
        self.queue = PlacementQueue(max_tries=self.config.max_placement_tries)
        self.runners = RunnersFramework(
            env,
            multicluster,
            callbacks=self,
            adaptation_point_interval=self.config.adaptation_point_interval,
            rng=self.streams["applications"],
        )
        self.runners.register_runner_class(JobKind.MALLEABLE, MalleableRunner)

        #: Runner of every job the scheduler has accepted, keyed by job id.
        self._runners: Dict[int, JobRunner] = {}
        #: Jobs whose application is currently executing.
        self._running: Dict[int, Job] = {}
        #: Running malleable runners indexed by cluster, in start order —
        #: mirrors ``_running`` so the malleability manager's per-cluster
        #: queries do not rescan every running job.
        self._running_malleable: Dict[str, List[MalleableRunner]] = {}
        #: Completed jobs with their execution records, in completion order.
        self.finished: List[Job] = []
        self.records: Dict[int, ExecutionRecord] = {}
        #: Jobs abandoned after exhausting their placement retries.
        self.failed: List[Job] = []
        #: Lifetime counters.  ``all_done`` is defined over these, not over
        #: the list/dict sizes, so streaming consumers may evict finished
        #: jobs (:meth:`drain_finished`) without confusing the run loop —
        #: the flat-memory property million-job replays depend on.
        self._accepted_count = 0
        self._finished_count = 0
        self._failed_count = 0

        # Malleability management (optional).  Imported here to keep the
        # scheduler importable without the malleability layer.
        from repro.malleability.manager import (
            JobManagementApproach,
            MalleabilityManager,
        )

        self.manager: Optional[MalleabilityManager] = None
        self.approach: Optional[JobManagementApproach] = None
        if self.config.malleability_policy is not None:
            policy = build_policy("malleability", self.config.malleability_policy)
            self.manager = MalleabilityManager(
                env,
                self,
                policy,
                threshold=self.config.grow_threshold,
                offer_mode=self.config.grow_offer_mode,
            )
            self.approach = build_policy("approach", self.config.approach)

        # Wire the three policy axes through the one event mechanism, in a
        # fixed order: placement sees events first, then the malleability
        # policy, then the approach whose trigger round consumes them.
        self.hooks.subscribe(self.placement_policy)
        if self.manager is not None:
            self.hooks.subscribe(self.manager.policy)
            self.hooks.subscribe(self.approach)
        else:
            self.hooks.subscribe(_QueueScanHooks())

        self.kis.on_poll(self._on_kis_poll)
        self._in_trigger = False

    # -- event emission ---------------------------------------------------------

    def emit(self, event) -> None:
        """Deliver *event* to every subscribed hook (see :attr:`hooks`)."""
        self.hooks.emit(event)

    # -- submission -------------------------------------------------------------

    def submit(self, job: Job) -> JobRunner:
        """Accept *job* for scheduling; returns the runner created for it."""
        if job.job_id in self._runners:
            raise ValueError(f"job {job.name!r} was already submitted")
        job.submit_time = self.env.now
        job.state = JobState.QUEUED
        runner = self.runners.create_runner(job)
        self._runners[job.job_id] = runner
        self._accepted_count += 1
        self.queue.enqueue(job, self.env.now)
        # A submission is a job-management trigger (the approach reacts).
        self.emit(JobSubmitted(self.env.now, job))
        return runner

    # -- views used by the malleability manager ------------------------------------

    def cluster_names(self) -> List[str]:
        """Names of the clusters the scheduler can place jobs on."""
        return self.multicluster.cluster_names

    def effective_idle_processors(self) -> Dict[str, int]:
        """Idle processors per cluster with pending claims subtracted.

        Served from the incrementally maintained struct-of-arrays view —
        equal, entry for entry, to
        ``ledger.effective_idle(kis.idle_processors(fresh=True))``.  The
        returned dict is shared and read-only; copy before mutating.
        """
        return self._state.effective_view()

    def running_malleable_runners(self, cluster_name: str) -> List[MalleableRunner]:
        """Running malleable runners placed on *cluster_name*."""
        runners = self._running_malleable.get(cluster_name)
        if not runners:
            return []
        return [runner for runner in runners if runner.is_running]

    def running_malleable_index(self) -> Dict[str, List[MalleableRunner]]:
        """The per-cluster index of started malleable runners (read-only).

        Entries may contain runners that are no longer ``is_running``; use
        :meth:`running_malleable_runners` for the filtered view.  The
        malleability manager consults this index to skip clusters with no
        malleable runners at all without a per-cluster call.
        """
        return self._running_malleable

    def running_jobs(self) -> List[Job]:
        """Jobs currently executing."""
        return list(self._running.values())

    def running_runners(self, cluster_name: Optional[str] = None) -> List[JobRunner]:
        """Runners of the currently executing jobs, in start order.

        With *cluster_name*, only the runners executing on that cluster —
        the view the fault injector draws failure victims from.
        """
        runners = [self._runners[job.job_id] for job in self._running.values()]
        if cluster_name is None:
            return runners
        return [
            runner
            for runner in runners
            if runner.cluster_name == cluster_name and runner.is_running
        ]

    def queue_head(self) -> Optional[Job]:
        """The job at the head of the placement queue (``None`` when empty)."""
        head = self.queue.head
        return head.job if head is not None else None

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting for placement."""
        return len(self.queue)

    # -- job management triggers -----------------------------------------------------

    def trigger(self) -> None:
        """Run one round of job management (placement + malleability).

        Re-entrant calls (e.g. a placement starting a job, which releases a
        claim, which retriggers the scheduler) collapse into the outermost
        round.
        """
        if self._in_trigger:
            return
        self._in_trigger = True
        try:
            if self.approach is not None and self.manager is not None:
                self.approach.on_trigger(self, self.manager)
            else:
                self.scan_queue()
        finally:
            self._in_trigger = False

    def _on_kis_poll(self, snapshot: KisSnapshot) -> None:
        self.emit(KisUpdated(self.env.now, snapshot))

    # -- placement -----------------------------------------------------------------

    def scan_queue(self) -> int:
        """Scan the placement queue head to tail; place every job that fits.

        Returns the number of jobs for which placement was initiated.
        """
        if not self.queue:
            return 0
        placed = 0
        for entry in list(self.queue):
            job = entry.job
            if job.state is not JobState.QUEUED:
                continue
            if self._try_place(job):
                placed += 1
        return placed

    def _try_place(self, job: Job) -> bool:
        """Attempt one placement of *job*; returns ``True`` if claiming started."""
        idle_view = self.effective_idle_processors()
        decision = self.placement_policy.place(job, idle_view, self.multicluster)
        if not decision.success:
            if decision.deferred:
                # A deliberate policy hold (e.g. a protected backfilling
                # reservation): the job stays queued, penalty-free.
                return False
            abandoned = self.queue.record_failure(job, decision.reason)
            if abandoned:
                self._abandon(job, decision.reason)
            return False

        # The evaluated workloads use single-component jobs; co-allocated
        # placements are accepted by the policies but executed one component
        # at a time by the rigid runner only.
        if len(decision.placements) != 1:
            abandoned = self.queue.record_failure(
                job, "co-allocated execution is not supported by this runner"
            )
            if abandoned:
                self._abandon(job, "co-allocation not supported")
            return False

        (cluster_name, processors) = next(iter(decision.placements.values()))
        claim = self.ledger.reserve(cluster_name, processors, owner=job.name)
        job.state = JobState.PLACING
        self.queue.remove(job)
        runner = self._runners[job.job_id]
        outcome = runner.start(cluster_name, processors, claim=claim, ledger=self.ledger)
        self.env.process(self._placement_outcome(job, outcome))
        self.emit(JobPlaced(self.env.now, job, cluster_name, processors))
        return True

    def _placement_outcome(self, job: Job, outcome):
        started = yield outcome
        if started:
            return
        # Claiming failed (processors disappeared between decision and claim):
        # the job goes back to the tail of the placement queue.
        job.state = JobState.QUEUED
        job.clear_placement()
        if job not in self.queue:
            self.queue.enqueue(job, self.env.now)
        abandoned = self.queue.record_failure(job, "claim failed")
        if abandoned:
            self._abandon(job, "claim failed too many times")

    def _abandon(self, job: Job, reason: str) -> None:
        job.state = JobState.FAILED
        job.failure_reason = reason
        self.failed.append(job)
        self._failed_count += 1

    # -- runner callbacks (SchedulerCallbacks protocol) ---------------------------------

    def job_started(self, job: Job) -> None:
        """A runner reports that *job*'s application is now executing."""
        self._running[job.job_id] = job
        runner = self._runners[job.job_id]
        if isinstance(runner, MalleableRunner):
            self._running_malleable.setdefault(runner.cluster_name, []).append(runner)
        self.emit(JobStarted(self.env.now, job))

    def _forget_running(self, job: Job) -> None:
        """Drop *job* from the running views (both the map and the index)."""
        if self._running.pop(job.job_id, None) is None:
            return
        runner = self._runners.get(job.job_id)
        if isinstance(runner, MalleableRunner):
            runners = self._running_malleable.get(runner.cluster_name)
            if runners is not None:
                try:
                    runners.remove(runner)
                except ValueError:  # pragma: no cover - defensive
                    pass

    def job_finished(self, job: Job, record: ExecutionRecord) -> None:
        """A runner reports that *job* finished; its processors are free again."""
        self._forget_running(job)
        self.finished.append(job)
        self.records[job.job_id] = record
        self._finished_count += 1
        # Processors became available: a job-management trigger (via hooks).
        self.emit(JobEnded(self.env.now, job, record=record))

    def job_failed(self, job: Job, reason: str) -> None:
        """A runner reports that it definitively gave up on *job*."""
        self._forget_running(job)
        if job not in self.failed:
            self._abandon(job, reason)
        self.emit(JobEnded(self.env.now, job, failed=True, reason=reason))

    def processors_released(self, cluster_name: str) -> None:
        """A runner released processors on *cluster_name* (shrink or voluntary)."""
        self.emit(ProcessorsFreed(self.env.now, cluster_name))

    # -- failure-aware job management (used by repro.faults) --------------------------

    def fail_job(self, job: Job, *, reason: str, resubmit: bool = True) -> bool:
        """Kill the running *job* after a node failure, optionally resubmitting it.

        The execution is aborted and every held processor released (the
        killed work is gone — rigid jobs pay the paper's price for not being
        malleable).  With ``resubmit=True`` the *same* job goes back to the
        tail of the placement queue under a fresh runner, keeping its
        original submit time so response-time metrics include the wasted
        attempt; otherwise it is abandoned for good.  Emits
        :class:`~repro.policies.hooks.JobFailed` either way (plus the usual
        :class:`JobSubmitted` / failed :class:`JobEnded`).

        Returns ``False`` when *job* is not currently executing (nothing to
        kill).
        """
        runner = self._runners.get(job.job_id)
        if runner is None or job.job_id not in self._running:
            return False
        self._forget_running(job)
        runner.kill(reason)
        if resubmit:
            job.state = JobState.QUEUED
            job.failure_reason = ""
            job.clear_placement()
            self._runners[job.job_id] = self.runners.create_runner(job)
            self.queue.enqueue(job, self.env.now)
            self.emit(JobFailed(self.env.now, job, reason=reason, resubmitted=True))
            # The resubmission is a job-management trigger like any other.
            self.emit(JobSubmitted(self.env.now, job))
        else:
            if job not in self.failed:
                self._abandon(job, reason)
            self.emit(JobFailed(self.env.now, job, reason=reason, resubmitted=False))
            self.emit(JobEnded(self.env.now, job, failed=True, reason=reason))
        return True

    # -- bookkeeping -------------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        """Whether every submitted job has finished or failed.

        Counter-based (not list-length-based) so evicting finished jobs
        through :meth:`drain_finished` cannot change the answer.
        """
        return self._finished_count + self._failed_count == self._accepted_count

    @property
    def finished_count(self) -> int:
        """Lifetime number of finished jobs (eviction-proof)."""
        return self._finished_count

    @property
    def failed_count(self) -> int:
        """Lifetime number of abandoned jobs (eviction-proof)."""
        return self._failed_count

    @property
    def accepted_count(self) -> int:
        """Lifetime number of accepted submissions (eviction-proof)."""
        return self._accepted_count

    def drain_finished(self) -> List[tuple]:
        """Hand over — and forget — every finished job with its record.

        The streaming-metrics eviction hook: returns ``[(job, record), ...]``
        in completion order, then drops the jobs from :attr:`finished`,
        :attr:`records` and the runner map so a million-job replay holds
        only the in-flight working set.  :attr:`all_done` is unaffected
        (it is counter-based).  After a drain,
        :meth:`~repro.metrics.collector.ExperimentMetrics.from_run` only
        sees the jobs finished since — callers that drain are expected to
        accumulate metrics incrementally (see
        :mod:`repro.metrics.windowed`).
        """
        drained = [(job, self.records.pop(job.job_id)) for job in self.finished]
        for job, _ in drained:
            self._runners.pop(job.job_id, None)
        self.finished = []
        return drained

    def runner_for(self, job: Job) -> JobRunner:
        """The runner created for *job*."""
        return self._runners[job.job_id]

    def execution_records(self) -> List[ExecutionRecord]:
        """Execution records of all finished jobs, in completion order."""
        return [self.records[job.job_id] for job in self.finished]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<KoalaScheduler policy={self.placement_policy.name} "
            f"approach={self.config.approach if self.manager else None} "
            f"queued={len(self.queue)} running={len(self._running)} "
            f"finished={len(self.finished)}>"
        )
