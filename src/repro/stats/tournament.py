"""Cross-grid policy tournaments: ranked tables and Pareto frontiers.

A *tournament* pits every variant of a scenario (the entrants — typically a
policy × trace × load_factor × fault_model grid) against each other across a
common seed grid.  Each entrant's metrics are aggregated by the replication
layer into means, standard deviations and bootstrap confidence intervals;
the entrants are then ranked on one metric and the Pareto frontier over

    (mean_response_time, wasted_processor_seconds, jobs_lost)

— responsiveness versus wasted work versus resilience, all minimised — is
computed over the per-entrant means.  The report is plain text in the style
of :mod:`repro.metrics.reports`, and byte-identical across serial, parallel,
warm-cache and daemon-backed executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, isnan
from typing import Any, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.scenarios import ScenarioSpec, get_scenario
from repro.experiments.setup import ExperimentResult
from repro.metrics.reports import format_table
from repro.stats.aggregate import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    MetricStats,
)
from repro.stats.replication import DEFAULT_SEEDS, ReplicaSet, group_replicas, replicate

#: The Pareto objectives, all minimised: responsiveness, wasted work, losses.
PARETO_METRICS: Tuple[str, ...] = (
    "mean_response_time",
    "wasted_processor_seconds",
    "jobs_lost",
)

#: Default ranking metric.
DEFAULT_RANK_METRIC = "mean_response_time"

#: Metrics aggregated for every entrant (the report's columns).
REPORT_METRICS: Tuple[str, ...] = (
    "mean_response_time",
    "mean_execution_time",
    "wasted_processor_seconds",
    "jobs_lost",
)


@dataclass(frozen=True)
class TournamentEntry:
    """One entrant: a variant's label plus its aggregated statistics."""

    label: str
    seeds: Tuple[int, ...]
    stats: Mapping[str, MetricStats]
    truncated: bool

    def objective(self, metric: str) -> float:
        """The entrant's mean of *metric* for ordering (``nan`` -> ``inf``).

        An entrant with no finished jobs has ``nan`` means; mapping those to
        infinity keeps ranking and domination total orders (a run that never
        finished anything cannot beat one that did).
        """
        mean = self.stats[metric].mean
        return inf if isnan(mean) else mean


@dataclass(frozen=True)
class TournamentResult:
    """Ranked entrants plus the Pareto frontier of one tournament."""

    title: str
    rank_metric: str
    confidence: float
    entries: Tuple[TournamentEntry, ...]
    pareto: Tuple[str, ...]

    @property
    def ranking(self) -> Tuple[str, ...]:
        """The entrant labels, best first."""
        return tuple(entry.label for entry in self.entries)

    @property
    def truncated_entrants(self) -> Tuple[str, ...]:
        """Entrants with at least one replica cut off by the time limit."""
        return tuple(entry.label for entry in self.entries if entry.truncated)


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector *a* Pareto-dominates *b* (minimisation)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_frontier(
    entries: Sequence[TournamentEntry],
    *,
    metrics: Sequence[str] = PARETO_METRICS,
) -> Tuple[str, ...]:
    """Labels of the non-dominated entrants, in the order given.

    Entrants with identical objective vectors are all on the frontier —
    neither strictly dominates the other.
    """
    vectors = [
        tuple(entry.objective(metric) for metric in metrics) for entry in entries
    ]
    frontier: List[str] = []
    for index, entry in enumerate(entries):
        if not any(
            _dominates(vectors[other], vectors[index])
            for other in range(len(entries))
            if other != index
        ):
            frontier.append(entry.label)
    return tuple(frontier)


def rank_replicas(
    replicas: Mapping[str, ReplicaSet],
    *,
    title: str = "tournament",
    rank_metric: str = DEFAULT_RANK_METRIC,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
) -> TournamentResult:
    """Aggregate, rank and Pareto-classify already-replicated variants.

    Ranking is by ascending mean of *rank_metric*, ties broken by label —
    a total, deterministic order whatever the execution schedule was.
    """
    if not replicas:
        raise ValueError("a tournament needs at least one entrant")
    metrics = tuple(dict.fromkeys((rank_metric,) + REPORT_METRICS + PARETO_METRICS))
    entries = [
        TournamentEntry(
            label=replica.label,
            seeds=replica.seeds,
            stats={
                metric: replica.stats(
                    metric, confidence=confidence, resamples=resamples
                )
                for metric in metrics
            },
            truncated=replica.truncated,
        )
        for replica in replicas.values()
    ]
    entries.sort(key=lambda entry: (entry.objective(rank_metric), entry.label))
    return TournamentResult(
        title=title,
        rank_metric=rank_metric,
        confidence=float(confidence),
        entries=tuple(entries),
        pareto=pareto_frontier(entries),
    )


def run_tournament(
    scenario: Union[str, ScenarioSpec],
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    rank_metric: str = DEFAULT_RANK_METRIC,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    job_count: Optional[int] = None,
    jobs: int = 1,
    cache: Any = None,
    refresh: bool = False,
    overrides: Optional[Mapping[str, Any]] = None,
    client: Any = None,
    timeout: Optional[float] = None,
) -> TournamentResult:
    """Replicate *scenario* across *seeds* and rank its variants.

    The execution knobs (*jobs*, *cache*, *refresh*, *client*, *timeout*)
    are those of :func:`~repro.stats.replication.replicate`; the statistics
    knobs (*rank_metric*, *confidence*, *resamples*) those of
    :func:`rank_replicas`.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    replicas = replicate(
        spec,
        seeds=seeds,
        job_count=job_count,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        overrides=overrides,
        client=client,
        timeout=timeout,
    )
    return rank_replicas(
        replicas,
        title=spec.name,
        rank_metric=rank_metric,
        confidence=confidence,
        resamples=resamples,
    )


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def _interval(stats: MetricStats) -> str:
    """Compact rendering of a confidence interval."""
    return f"[{stats.ci_lower:.2f}, {stats.ci_upper:.2f}]"


def tournament_report(result: TournamentResult) -> str:
    """Plain-text tournament report: ranked table plus Pareto frontier."""
    level = f"{result.confidence * 100:g}%"
    seed_counts = {entry.stats[result.rank_metric].count for entry in result.entries}
    replicas = (
        f"{next(iter(seed_counts))} seeds"
        if len(seed_counts) == 1
        else f"{min(seed_counts)}-{max(seed_counts)} seeds"
    )
    headers = [
        "rank",
        "entrant",
        f"{result.rank_metric} (mean)",
        f"{level} CI",
        "sd",
        "wasted cpu-s",
        "jobs lost",
        "pareto",
    ]
    rows = []
    for rank, entry in enumerate(result.entries, start=1):
        ranked = entry.stats[result.rank_metric]
        rows.append(
            [
                rank,
                entry.label,
                ranked.mean,
                _interval(ranked),
                ranked.stddev,
                entry.stats["wasted_processor_seconds"].mean,
                entry.stats["jobs_lost"].mean,
                "*" if entry.label in result.pareto else "",
            ]
        )
    sections = [
        format_table(
            headers,
            rows,
            title=(
                f"Tournament: {result.title} "
                f"({len(result.entries)} entrants, {replicas}, {level} CI, "
                f"ranked by {result.rank_metric})"
            ),
        ),
        "",
        "Pareto frontier over (" + ", ".join(PARETO_METRICS) + "):",
    ]
    sections.extend(f"  {label}" for label in result.pareto)
    if result.truncated_entrants:
        sections.append("")
        sections.append(
            "WARNING: truncated replicas (metrics partial): "
            + ", ".join(result.truncated_entrants)
        )
    return "\n".join(sections)


def tournament_report_from_results(
    results: Mapping[str, ExperimentResult],
    *,
    title: str = "tournament",
    rank_metric: str = DEFAULT_RANK_METRIC,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
) -> str:
    """Tournament report straight from labelled scenario results.

    The reporter hook of the registered ``tournament`` scenario: the labels
    carry ``@seed<N>`` suffixes from the multi-seed expansion and are grouped
    back into replica sets here.
    """
    return tournament_report(
        rank_replicas(
            group_replicas(results),
            title=title,
            rank_metric=rank_metric,
            confidence=confidence,
            resamples=resamples,
        )
    )


def tournament_grid_spec(**kwargs: Any) -> ScenarioSpec:
    """A custom (policy × trace × load_factor × fault_model) grid spec.

    A thin re-export of
    :func:`repro.experiments.scenarios.tournament_scenario` for callers that
    start from the statistics layer; see that factory for the parameters.
    """
    from repro.experiments.scenarios import tournament_scenario

    return tournament_scenario(**kwargs)
