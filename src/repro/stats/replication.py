"""Multi-seed replication of registered scenarios.

:func:`replicate` runs every variant of a scenario across a *seed grid* and
groups the results per variant into :class:`ReplicaSet`\\ s — the sampling
layer every statistic in :mod:`repro.stats` is computed over.  It rides the
existing sweep engine end to end: each ``(variant, seed)`` cell is one
ordinary :class:`~repro.experiments.setup.ExperimentConfig`, so replicas fan
out over the same worker pool, hit the same content-addressed result cache
and coalesce in the daemon exactly like any other run.  Replicating a
scenario a second time is therefore warm-cache and byte-identical.

Execution backends
------------------
* **In-process / process pool** (the default): the engine's
  :func:`~repro.experiments.engine.run_configs` with ``jobs`` workers.
* **Daemon-backed** (``client=``): the whole grid is enqueued in one
  ``batch`` request on a running experiment service, then collected with
  ``run_and_wait`` per cell — identical configurations submitted by other
  clients coalesce with ours, and results persist in the daemon's store.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.engine import ResultCache, record_to_result, run_configs
from repro.experiments.scenarios import ScenarioSpec, get_scenario
from repro.experiments.setup import ExperimentConfig, ExperimentResult
from repro.stats.aggregate import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    MetricStats,
)

#: Default seed grid of the statistics layer: three independent replicas.
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)

#: Metrics that are structurally absent from fault-free runs and count as
#: zero there: a run without a fault model wastes no work and loses no jobs.
RESILIENCE_ZERO_DEFAULTS = frozenset(
    {
        "node_failures",
        "jobs_killed",
        "resubmissions",
        "jobs_lost",
        "shrink_rescues",
        "local_jobs_killed",
        "wasted_processor_seconds",
    }
)

#: The ``@seed<N>`` / ``#rep<N>`` suffixes :meth:`ScenarioSpec.expand` adds.
_REPLICA_SUFFIX = re.compile(r"(?:@seed\d+|#rep\d+)")


def base_label(label: str) -> str:
    """*label* with any replica (``@seed``/``#rep``) suffixes stripped."""
    return _REPLICA_SUFFIX.sub("", label)


@dataclass(frozen=True)
class ReplicaSet:
    """All replicas (seeds × repetitions) of one scenario variant."""

    label: str
    results: Tuple[ExperimentResult, ...]

    @property
    def seeds(self) -> Tuple[int, ...]:
        """The run seeds of the replicas, in execution order."""
        return tuple(result.config.seed for result in self.results)

    @property
    def count(self) -> int:
        """Number of replicas."""
        return len(self.results)

    @property
    def truncated(self) -> bool:
        """Whether any replica hit its simulated-time limit."""
        return any(result.truncated for result in self.results)

    def samples(self, metric: str) -> List[float]:
        """The per-replica values of *metric*, in replica order.

        *metric* is a key of
        :meth:`~repro.metrics.collector.ExperimentMetrics.summary`.
        Resilience metrics absent from fault-free runs count as ``0.0``;
        any other unknown metric raises :class:`KeyError` with the known
        keys listed, so a typo'd metric name cannot silently aggregate to
        a column of zeros.
        """
        values: List[float] = []
        for result in self.results:
            summary = result.metrics.summary()
            if metric in summary:
                values.append(float(summary[metric]))
            elif metric in RESILIENCE_ZERO_DEFAULTS:
                values.append(0.0)
            else:
                known = sorted(set(summary) | RESILIENCE_ZERO_DEFAULTS)
                raise KeyError(
                    f"unknown metric {metric!r}; known: {', '.join(known)}"
                )
        return values

    def stats(
        self,
        metric: str,
        *,
        confidence: float = DEFAULT_CONFIDENCE,
        resamples: int = DEFAULT_RESAMPLES,
    ) -> MetricStats:
        """Mean / stddev / bootstrap CI of *metric* over the replicas."""
        return MetricStats.from_samples(
            metric, self.samples(metric), confidence=confidence, resamples=resamples
        )


def _seed_grid(seeds: Sequence[int]) -> Tuple[int, ...]:
    """Validated seed grid: non-empty, non-negative, duplicate-free."""
    grid = tuple(int(seed) for seed in seeds)
    if not grid:
        raise ValueError("at least one seed is required")
    if any(seed < 0 for seed in grid):
        raise ValueError(f"seeds must be non-negative, got {grid}")
    if len(set(grid)) != len(grid):
        raise ValueError(f"seeds must be distinct, got {grid}")
    return grid


def _run_via_daemon(
    client: Any,
    configs: Sequence[ExperimentConfig],
    *,
    timeout: Optional[float],
) -> List[ExperimentResult]:
    """Execute *configs* on a running experiment daemon.

    One ``batch`` request enqueues the whole grid (deduplicating identical
    configurations daemon-side), then each cell is collected with
    ``run_and_wait`` — which attaches to the in-flight job rather than
    resubmitting, so the grid executes each distinct configuration once.
    """
    client.batch([config.to_dict() for config in configs])
    results: List[ExperimentResult] = []
    for config in configs:
        response = client.run_and_wait(
            config, timeout=timeout, response_format="detailed"
        )
        results.append(record_to_result(response["record"]))
    return results


def replicate(
    scenario: Union[str, ScenarioSpec],
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    job_count: Optional[int] = None,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    refresh: bool = False,
    overrides: Optional[Mapping[str, Any]] = None,
    client: Any = None,
    timeout: Optional[float] = None,
) -> Dict[str, ReplicaSet]:
    """Run every variant of *scenario* across *seeds*; group per variant.

    Returns replica sets keyed by the variant's bare label (seed suffixes
    stripped), in the scenario's variant order.  With ``client`` set (a
    :class:`~repro.service.client.ServiceClient`), execution happens on the
    daemon via its batch operation instead of a local worker pool — *jobs*,
    *cache* and *refresh* are then daemon-side concerns and must be left at
    their defaults.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if spec.is_static:
        raise ValueError(f"scenario {spec.name!r} is static and cannot be replicated")
    grid = _seed_grid(seeds)
    if client is not None and (refresh or jobs != 1 or cache is not None):
        raise ValueError(
            "daemon-backed replication delegates execution entirely: "
            "jobs/cache/refresh must be left at their defaults"
        )
    per_seed = [
        spec.expand(job_count=job_count, seed=seed, overrides=overrides)
        for seed in grid
    ]
    configs = [config for pairs in per_seed for _, config in pairs]
    if client is not None:
        results = _run_via_daemon(client, configs, timeout=timeout)
    else:
        results = run_configs(configs, jobs=jobs, cache=cache, refresh=refresh)

    width = len(per_seed[0])
    grouped: Dict[str, List[ExperimentResult]] = {}
    for variant_index in range(width):
        label = base_label(per_seed[0][variant_index][0])
        bucket = grouped.setdefault(label, [])
        for seed_index in range(len(grid)):
            bucket.append(results[seed_index * width + variant_index])
    return {
        label: ReplicaSet(label=label, results=tuple(bucket))
        for label, bucket in grouped.items()
    }


def group_replicas(
    results: Mapping[str, ExperimentResult]
) -> Dict[str, ReplicaSet]:
    """Group already-run labelled results into replica sets.

    The adapter between the ordinary scenario execution path (which returns
    ``{label: result}`` with ``@seed<N>`` suffixes on multi-seed sweeps) and
    the statistics layer: labels sharing a bare prefix become one
    :class:`ReplicaSet`, in first-appearance order.
    """
    grouped: Dict[str, List[ExperimentResult]] = {}
    for label, result in results.items():
        grouped.setdefault(base_label(label), []).append(result)
    return {
        label: ReplicaSet(label=label, results=tuple(bucket))
        for label, bucket in grouped.items()
    }
