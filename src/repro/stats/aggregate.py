"""Sample statistics with bootstrap confidence intervals.

The numerical core of the statistics layer: given the per-replica samples of
one metric (one value per seed), :class:`MetricStats` carries the mean, the
sample standard deviation and a bootstrap percentile confidence interval of
the mean.  Everything is deterministic — the bootstrap resampling runs on a
:func:`numpy.random.default_rng` generator seeded with a fixed constant — so
two computations over the same samples produce byte-identical statistics,
which is what lets tournament reports be compared verbatim across serial,
parallel and warm-cache executions.

The bootstrap (resample the observed values with replacement, take the mean
of each resample, read the interval off the percentiles of those means)
makes no distributional assumption, which matters here: scheduling metrics
such as response times are heavily skewed, and a normal-theory interval over
three seeds would be wishful thinking.  With a single sample the interval
degenerates to the point estimate — honest about what one run shows, which
is nothing about variability.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import nan, sqrt
from typing import Any, Dict, Iterable, Tuple

import numpy as np

#: Default two-sided confidence level of the bootstrap intervals.
DEFAULT_CONFIDENCE = 0.95

#: Default number of bootstrap resamples.
DEFAULT_RESAMPLES = 1000

#: Fixed seed of the bootstrap generator: determinism over cleverness.
BOOTSTRAP_SEED = 0x5EED


def bootstrap_ci(
    samples: Iterable[float],
    *,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> Tuple[float, float]:
    """Bootstrap percentile confidence interval of the mean of *samples*.

    Deterministic for a given ``(samples, confidence, resamples, seed)``
    tuple.  Degenerate inputs degrade gracefully: one sample yields the
    point interval ``(x, x)``, zero samples yield ``(nan, nan)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie strictly in (0, 1), got {confidence!r}")
    if resamples < 1:
        raise ValueError(f"resamples must be at least 1, got {resamples!r}")
    values = np.asarray(list(samples), dtype=float)
    if len(values) == 0:
        return (nan, nan)
    if len(values) == 1:
        point = float(values[0])
        return (point, point)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(values), size=(int(resamples), len(values)))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(lower), float(upper))


@dataclass(frozen=True)
class MetricStats:
    """Mean, spread and confidence interval of one metric over replicas."""

    metric: str
    count: int
    mean: float
    stddev: float
    ci_lower: float
    ci_upper: float
    confidence: float

    @classmethod
    def from_samples(
        cls,
        metric: str,
        samples: Iterable[float],
        *,
        confidence: float = DEFAULT_CONFIDENCE,
        resamples: int = DEFAULT_RESAMPLES,
        seed: int = BOOTSTRAP_SEED,
    ) -> "MetricStats":
        """Aggregate the per-replica *samples* of *metric*.

        The standard deviation is the sample (``ddof=1``) estimate, ``0.0``
        for a single replica and ``nan`` for none.
        """
        values = [float(value) for value in samples]
        lower, upper = bootstrap_ci(
            values, confidence=confidence, resamples=resamples, seed=seed
        )
        if not values:
            mean = stddev = nan
        else:
            mean = float(np.mean(values))
            if len(values) > 1:
                # Explicit formula instead of np.std(ddof=1): identical
                # result, but no warning path for the n == 1 case above.
                centered = np.asarray(values) - mean
                stddev = float(sqrt(float(np.sum(centered * centered)) / (len(values) - 1)))
            else:
                stddev = 0.0
        return cls(
            metric=str(metric),
            count=len(values),
            mean=mean,
            stddev=stddev,
            ci_lower=lower,
            ci_upper=upper,
            confidence=float(confidence),
        )

    @property
    def ci_width(self) -> float:
        """Width of the confidence interval (``0.0`` for point intervals)."""
        return self.ci_upper - self.ci_lower

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "metric": self.metric,
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "ci_lower": self.ci_lower,
            "ci_upper": self.ci_upper,
            "confidence": self.confidence,
        }
