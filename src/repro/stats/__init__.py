"""Statistical rigor layer: multi-seed replication, CIs and tournaments.

Every figure of the paper is a single-trajectory estimate; this package
turns any registered scenario into a *replicated* experiment — the same
variants run across a seed grid, aggregated into means, standard deviations
and bootstrap confidence intervals — and stages cross-grid *tournaments*
(policy × trace × load_factor × fault_model) that emit ranked tables and a
Pareto frontier over responsiveness, wasted work and job losses.

The layer adds no execution machinery of its own: replicas are ordinary
:class:`~repro.experiments.setup.ExperimentConfig` runs flowing through the
sweep engine, the content-addressed result cache and (optionally) the
experiment daemon, so replicated sweeps cache, parallelise and coalesce
exactly like single runs — and repeated tournaments are warm-cache and
byte-identical.

    from repro.stats import run_tournament, tournament_report

    result = run_tournament("figure7", seeds=(0, 1, 2))
    print(tournament_report(result))
"""

from repro.stats.aggregate import (
    BOOTSTRAP_SEED,
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    MetricStats,
    bootstrap_ci,
)
from repro.stats.replication import (
    DEFAULT_SEEDS,
    RESILIENCE_ZERO_DEFAULTS,
    ReplicaSet,
    base_label,
    group_replicas,
    replicate,
)
from repro.stats.tournament import (
    DEFAULT_RANK_METRIC,
    PARETO_METRICS,
    REPORT_METRICS,
    TournamentEntry,
    TournamentResult,
    pareto_frontier,
    rank_replicas,
    run_tournament,
    tournament_grid_spec,
    tournament_report,
    tournament_report_from_results,
)

__all__ = [
    "BOOTSTRAP_SEED",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_RANK_METRIC",
    "DEFAULT_RESAMPLES",
    "DEFAULT_SEEDS",
    "MetricStats",
    "PARETO_METRICS",
    "REPORT_METRICS",
    "RESILIENCE_ZERO_DEFAULTS",
    "ReplicaSet",
    "TournamentEntry",
    "TournamentResult",
    "base_label",
    "bootstrap_ci",
    "group_replicas",
    "pareto_frontier",
    "rank_replicas",
    "replicate",
    "run_tournament",
    "tournament_grid_spec",
    "tournament_report",
    "tournament_report_from_results",
]
