"""Reproduction of "Scheduling Malleable Applications in Multicluster Systems".

Buisson, Sonmez, Mohamed, Lammers and Epema (IEEE Cluster 2007) added support
for *malleable* parallel applications — applications that can grow and shrink
their processor allocation while running — to the KOALA multicluster grid
scheduler, using the DYNACO adaptability framework on the application side,
and evaluated two job-management approaches (PRA, PWA) combined with two
malleability-management policies (FPSMA, EGS) on the DAS-3 testbed.

This package reproduces that system end to end on a discrete-event simulated
DAS-3, organised around a **unified pluggable policy API**: every scheduling
decision — *where* jobs are placed, *how* processors are spread over running
malleable jobs, and *when* the malleability manager acts — is a policy
registered in :mod:`repro.policies`, and the KOALA scheduler is an
event-driven core that consults all three axes through one typed event-hook
mechanism.

* :mod:`repro.sim` — the discrete-event simulation kernel;
* :mod:`repro.cluster` — the multicluster substrate (clusters, SGE-like local
  resource managers, GRAM endpoints, background load, network);
* :mod:`repro.apps` — the application models (NAS FT, GADGET-2, speedup and
  reconfiguration-cost models);
* :mod:`repro.dynaco` — the DYNACO observe/decide/plan/execute control loop
  and the AFPAC executor;
* :mod:`repro.policies` — **the policy API**: the ``(kind, name)`` registry,
  the :func:`~repro.policies.register` decorator, the
  :class:`~repro.policies.PolicySpec` parser for parameterised references
  (``"EASY?reserve_depth=2"``), the typed scheduler events and the
  :class:`~repro.policies.SchedulerHooks` interface — plus the two shipped
  policies beyond the paper (FCFS+EASY backfilling placement and the
  ElastiSim-style ``AVERAGE_STEAL`` fair-share malleability policy);
* :mod:`repro.koala` — the KOALA scheduler: an event-emitting core, the
  placement policies (WF/CF/CM/FCM), placement queue, information service,
  runners, MRunner;
* :mod:`repro.malleability` — the malleability manager, the PRA/PWA
  approaches and the FPSMA/EGS policies (plus equipartition/folding
  baselines);
* :mod:`repro.workloads` — the paper's workloads and SWF trace support;
* :mod:`repro.metrics` — CDFs, utilization and activity metrics;
* :mod:`repro.experiments` — the scenario registry, the parallel sweep
  engine with its result cache, and the figure/ablation reports.

Quickstart
----------
>>> from repro.experiments import ExperimentConfig, run_experiment
>>> result = run_experiment(ExperimentConfig(workload="Wm", job_count=20,
...                                          malleability_policy="EGS", approach="PRA"))
>>> result.metrics.job_count
20

Policies are referenced by registered name and may carry parameters; both
forms are validated when the configuration is constructed:

>>> ExperimentConfig(malleability_policy="AVERAGE_STEAL?balance='absolute'",
...                  placement_policy="EASY").placement_policy
'EASY'

Writing a new policy is one file — subclass an axis base class, decorate it
with :func:`repro.policies.register`, and every configuration surface
(configs, scenario sweeps, ``repro-cli``) can use it immediately; see
``examples/custom_policy.py``.
"""

__version__ = "0.6.0"

__all__ = ["__version__"]
