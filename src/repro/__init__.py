"""Reproduction of "Scheduling Malleable Applications in Multicluster Systems".

Buisson, Sonmez, Mohamed, Lammers and Epema (IEEE Cluster 2007) added support
for *malleable* parallel applications — applications that can grow and shrink
their processor allocation while running — to the KOALA multicluster grid
scheduler, using the DYNACO adaptability framework on the application side,
and evaluated two job-management approaches (PRA, PWA) combined with two
malleability-management policies (FPSMA, EGS) on the DAS-3 testbed.

This package reproduces that system end to end on a discrete-event simulated
DAS-3:

* :mod:`repro.sim` — the discrete-event simulation kernel;
* :mod:`repro.cluster` — the multicluster substrate (clusters, SGE-like local
  resource managers, GRAM endpoints, background load, network);
* :mod:`repro.apps` — the application models (NAS FT, GADGET-2, speedup and
  reconfiguration-cost models);
* :mod:`repro.dynaco` — the DYNACO observe/decide/plan/execute control loop
  and the AFPAC executor;
* :mod:`repro.koala` — the KOALA scheduler (placement policies, placement
  queue, information service, runners, MRunner);
* :mod:`repro.malleability` — the malleability manager, the PRA/PWA
  approaches and the FPSMA/EGS policies (plus equipartition/folding
  baselines);
* :mod:`repro.workloads` — the paper's workloads and SWF trace support;
* :mod:`repro.metrics` — CDFs, utilization and activity metrics;
* :mod:`repro.experiments` — drivers regenerating every figure of the
  evaluation plus ablation studies.

Quickstart
----------
>>> from repro.experiments import ExperimentConfig, run_experiment
>>> result = run_experiment(ExperimentConfig(workload="Wm", job_count=20,
...                                          malleability_policy="EGS", approach="PRA"))
>>> result.metrics.job_count
20
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
