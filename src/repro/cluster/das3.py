"""The DAS-3 testbed preset (Table I of the paper).

The Distributed ASCI Supercomputer 3 consists of five clusters totalling 272
dual-Opteron nodes.  Allocation granularity on the testbed is the node, so
"processors" throughout this reproduction means nodes, exactly as in the
paper's experiments (job sizes of up to 46 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.multicluster import Multicluster
from repro.cluster.background import BackgroundLoadSpec
from repro.cluster.network import Link, NetworkModel
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one DAS-3 cluster (one row of Table I)."""

    name: str
    location: str
    nodes: int
    interconnect: str


#: Table I — the distribution of the nodes over the DAS-3 clusters.
DAS3_CLUSTERS: Tuple[ClusterSpec, ...] = (
    ClusterSpec("vu", "Vrije University", 85, "Myri-10G & 1/10 GbE"),
    ClusterSpec("uva", "U. of Amsterdam", 41, "Myri-10G & 1/10 GbE"),
    ClusterSpec("delft", "Delft University", 68, "1/10 GbE"),
    ClusterSpec("multimedian", "MultimediaN", 46, "Myri-10G & 1/10 GbE"),
    ClusterSpec("leiden", "Leiden University", 32, "Myri-10G & 1/10 GbE"),
)

#: Total number of nodes in the DAS-3 (the paper quotes 272).
DAS3_TOTAL_NODES = sum(spec.nodes for spec in DAS3_CLUSTERS)


def das3_network() -> NetworkModel:
    """Wide-area network model of the DAS-3.

    All sites are connected by 1-10 Gbit/s Ethernet over SURFnet; clusters
    with Myri-10G have a faster local interconnect.  The model only has to be
    plausible and consistent — the evaluated experiments neither stage files
    nor co-allocate.
    """
    network = NetworkModel(
        default_local=Link(latency=1e-4, bandwidth=1200.0),
        default_remote=Link(latency=1.5e-3, bandwidth=110.0),
    )
    # Delft only has Ethernet locally, which mostly matters for intra-cluster
    # traffic; inter-site links are identical SURFnet lightpaths.
    network.set_link("delft", "delft", Link(latency=2e-4, bandwidth=110.0))
    return network


def das3_multicluster(
    env: Environment,
    *,
    streams: Optional[RandomStreams] = None,
    background: Optional[Dict[str, BackgroundLoadSpec]] = None,
    gram_submission_latency: float = 5.0,
    gram_recruit_latency: float = 0.5,
    gram_latency_jitter: float = 0.2,
    gram_concurrency: Optional[int] = None,
    local_backfilling: bool = False,
) -> Multicluster:
    """Build the five-cluster DAS-3 system of Table I.

    Parameters
    ----------
    env:
        Simulation environment.
    streams:
        Named random streams (deterministic default when omitted).
    background:
        Optional per-cluster background-load specifications keyed by cluster
        name; clusters without an entry get no background load, matching the
        paper's statement that background activity during the experiments was
        negligible.
    gram_submission_latency, gram_recruit_latency:
        GRAM latency parameters shared by all clusters.
    """
    multicluster = Multicluster(
        env,
        network=das3_network(),
        streams=streams,
        gram_submission_latency=gram_submission_latency,
        gram_recruit_latency=gram_recruit_latency,
        gram_latency_jitter=gram_latency_jitter,
        gram_concurrency=gram_concurrency,
        local_backfilling=local_backfilling,
    )
    background = background or {}
    for spec in DAS3_CLUSTERS:
        multicluster.add_cluster(
            spec.name,
            spec.nodes,
            location=spec.location,
            interconnect=spec.interconnect,
            background=background.get(spec.name),
        )
    return multicluster
