"""Struct-of-arrays hot state of a multicluster.

Profiling (see ``repro-bench --profile``) shows the kernel spends most of a
run answering one question over and over: *how many processors are idle per
cluster, minus the pending claims?*  Every KIS poll, every placement and
every grow decision rebuilt that answer as a fresh dict comprehension over
cluster objects — thousands of times per simulated hour.

:class:`ClusterState` inverts that: the per-cluster capacity counters live in
numpy columns (**struct of arrays**), updated incrementally at the four
mutation points of a cluster (allocate, release, fail, repair) plus the claim
ledger's reserve/settle/adjust.  The derived quantities every hot reader
wants — the idle view and the claim-adjusted *effective* idle view — are
maintained in place at the same time, so reads are plain attribute access
with no per-read rebuild, and the Worst-Fit processor selection is a
vectorized argmax over the effective column.

Invariants
----------
* ``idle[i] == max(0, total[i] - failed[i] - used_grid[i] - used_local[i])``
  after every mutation (the clamp mirrors
  :attr:`repro.cluster.cluster.Cluster.idle_processors`);
* ``effective[i] == max(0, idle[i] - pending[i])`` after every mutation
  (mirrors :meth:`repro.koala.claiming.ClaimLedger.effective_idle`);
* :meth:`idle_view` and :meth:`effective_view` return **shared, read-only**
  dicts that always reflect the invariants above.  Callers that retain or
  mutate a view must copy it (``dict(view)``); the KIS snapshot does exactly
  that, which is what preserves its deliberate staleness semantics.

The cluster objects remain the source of truth for their own counters; the
state is a bound mirror (see :meth:`repro.cluster.cluster.Cluster.bind_state`),
so standalone clusters — unit tests construct them without a multicluster —
work unchanged with no state attached.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class ClusterState:
    """Incrementally maintained per-cluster capacity columns.

    Columns are ``int64`` numpy arrays indexed by cluster registration
    order; :meth:`register` returns the index a cluster (or the claim
    ledger) uses for its updates.
    """

    def __init__(self) -> None:
        self.names: List[str] = []
        self._index: Dict[str, int] = {}
        self.total = np.zeros(0, dtype=np.int64)
        self.failed = np.zeros(0, dtype=np.int64)
        self.used_grid = np.zeros(0, dtype=np.int64)
        self.used_local = np.zeros(0, dtype=np.int64)
        self.pending = np.zeros(0, dtype=np.int64)
        #: Derived column: idle (clamped at zero) processors per cluster.
        self.idle = np.zeros(0, dtype=np.int64)
        #: Derived column: idle minus pending claims (clamped at zero).
        self.effective = np.zeros(0, dtype=np.int64)
        #: Shared read-only dict views of the derived columns (see module doc).
        self._idle_view: Dict[str, int] = {}
        self._effective_view: Dict[str, int] = {}
        #: Cluster indices in name order — the Worst-Fit tie-break order.
        self._name_order = np.zeros(0, dtype=np.int64)
        #: Plain-int shadows of the input columns.  Mutations do their
        #: arithmetic here (reading an ``int64`` cell materialises a numpy
        #: scalar, which costs more than the subtraction it feeds) and write
        #: the numpy cells afterwards, so the columns stay current for
        #: vectorized readers without ever being read back per mutation.
        self._total_i: List[int] = []
        self._failed_i: List[int] = []
        self._pending_i: List[int] = []

    # -- registration ---------------------------------------------------------

    def register(self, name: str, total_processors: int) -> int:
        """Add a cluster column; returns its index."""
        if name in self._index:
            raise ValueError(f"cluster {name!r} already registered")
        index = len(self.names)
        self.names.append(name)
        self._index[name] = index
        for column in ("total", "failed", "used_grid", "used_local",
                       "pending", "idle", "effective"):
            setattr(self, column, np.append(getattr(self, column), 0))
        self.total[index] = int(total_processors)
        self._total_i.append(int(total_processors))
        self._failed_i.append(0)
        self._pending_i.append(0)
        self._name_order = np.array(
            sorted(range(len(self.names)), key=self.names.__getitem__),
            dtype=np.int64,
        )
        self.update_usage(index, 0, 0)
        return index

    def index_of(self, name: str) -> int:
        """Column index of cluster *name*."""
        return self._index[name]

    def __len__(self) -> int:
        return len(self.names)

    # -- mutations ------------------------------------------------------------

    def update_usage(self, index: int, used_grid: int, used_local: int) -> None:
        """A cluster's allocation counters changed (allocate/release)."""
        self.used_grid[index] = used_grid
        self.used_local[index] = used_local
        idle = self._total_i[index] - self._failed_i[index] - used_grid - used_local
        if idle < 0:
            idle = 0
        effective = idle - self._pending_i[index]
        if effective < 0:
            effective = 0
        self.idle[index] = idle
        self.effective[index] = effective
        name = self.names[index]
        self._idle_view[name] = idle
        self._effective_view[name] = effective

    def update_failed(self, index: int, failed: int) -> None:
        """A cluster's failed-processor count changed (fault/repair)."""
        self.failed[index] = failed
        self._failed_i[index] = failed
        idle = (
            self._total_i[index]
            - failed
            - int(self.used_grid[index])
            - int(self.used_local[index])
        )
        if idle < 0:
            idle = 0
        effective = idle - self._pending_i[index]
        if effective < 0:
            effective = 0
        self.idle[index] = idle
        self.effective[index] = effective
        name = self.names[index]
        self._idle_view[name] = idle
        self._effective_view[name] = effective

    def update_pending(self, name: str, pending: int) -> None:
        """The claim ledger's pending total for *name* changed."""
        index = self._index[name]
        self.pending[index] = pending
        self._pending_i[index] = pending
        idle = self._idle_view[name]
        effective = idle - pending
        if effective < 0:
            effective = 0
        self.effective[index] = effective
        self._effective_view[name] = effective

    # -- reads ----------------------------------------------------------------

    def idle_view(self) -> Dict[str, int]:
        """Shared read-only ``{name: idle}`` view (copy before retaining)."""
        return self._idle_view

    def effective_view(self) -> Dict[str, int]:
        """Shared read-only ``{name: idle - pending}`` view (copy before retaining)."""
        return self._effective_view

    def idle_of(self, name: str) -> int:
        """Idle processors of one cluster."""
        return self._idle_view[name]

    def effective_of(self, name: str) -> int:
        """Effective idle processors of one cluster."""
        return self._effective_view[name]

    def total_idle(self) -> int:
        """System-wide idle processors."""
        return int(self.idle.sum())

    # -- vectorized selections -------------------------------------------------

    def select_worst_fit(self, processors: int) -> Optional[str]:
        """Cluster with the most effective-idle processors that fits *processors*.

        Ties break towards the lexicographically smallest name — identical to
        sorting candidates by ``(-idle, name)`` and taking the first, which
        is what :class:`repro.koala.placement.WorstFit` historically did.
        Returns ``None`` when no cluster fits.
        """
        order = self._name_order
        effective = self.effective[order]
        best = int(np.argmax(effective))
        if effective[best] < processors:
            return None
        return self.names[int(order[best])]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        busy = int(self.used_grid.sum() + self.used_local.sum())
        return f"<ClusterState {len(self)} clusters, {busy} busy, {self.total_idle()} idle>"
