"""A single cluster: a pool of identical nodes with atomic allocate/release.

The experiments allocate whole nodes ("the granularity of allocation is the
node"), so a cluster is modelled as a counted pool rather than as individual
node objects.  The cluster keeps separate grid/local usage counters so the
KOALA information service can report idle processors, and the metrics layer
can attribute utilization to KOALA-managed jobs versus background load.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.allocation import Allocation, AllocationError
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.monitor import TimeSeries


class Cluster:
    """A space-shared pool of *total_processors* identical nodes.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Cluster name (e.g. ``"delft"``).
    total_processors:
        Number of allocatable nodes.
    location:
        Human-readable site name (Table I's "Location" column).
    interconnect:
        Description of the local interconnect (Table I).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        total_processors: int,
        *,
        location: str = "",
        interconnect: str = "",
    ) -> None:
        if total_processors < 1:
            raise ValueError("a cluster needs at least one processor")
        self.env = env
        self.name = name
        self.location = location or name
        self.interconnect = interconnect
        self._total = int(total_processors)
        self._used_grid = 0
        self._used_local = 0
        self._failed = 0
        self._allocations: Dict[int, Allocation] = {}
        #: Step function of the total number of busy processors.
        self.usage_series = TimeSeries(name=f"{name}:usage")
        #: Step function of the number of *available* (non-failed) processors.
        #: Flat at ``total_processors`` unless a fault model drives the
        #: cluster through :meth:`mark_failed` / :meth:`mark_repaired`.
        self.availability_series = TimeSeries(name=f"{name}:availability")
        #: Step function of processors busy on behalf of KOALA-managed jobs.
        self.grid_usage_series = TimeSeries(name=f"{name}:grid-usage")
        #: Step function of processors busy on behalf of local background jobs.
        self.local_usage_series = TimeSeries(name=f"{name}:local-usage")
        #: Events to trigger next time processors are released (used by the
        #: local resource manager and the malleability manager to react to
        #: freed capacity without polling).
        self._release_waiters: List[Event] = []
        #: Persistent callbacks invoked on *every* release with
        #: ``(allocation)``; used by the malleability manager to account for
        #: the processors that become available over time.
        self._release_listeners: List = []
        #: Bound struct-of-arrays mirror (see :meth:`bind_state`); ``None``
        #: for standalone clusters outside a multicluster.
        self._state = None
        self._state_index = -1
        self._record_usage()
        self.availability_series.record(self.env.now, self._total)

    def bind_state(self, state, index: int) -> None:
        """Mirror this cluster's counters into column *index* of *state*.

        Called by :class:`~repro.cluster.multicluster.Multicluster` at
        registration; every counter mutation afterwards updates the
        struct-of-arrays view incrementally.
        """
        self._state = state
        self._state_index = index
        state.update_usage(index, self._used_grid, self._used_local)
        state.update_failed(index, self._failed)

    # -- capacity bookkeeping ------------------------------------------------

    @property
    def total_processors(self) -> int:
        """Total number of allocatable processors (nodes)."""
        return self._total

    @property
    def used_processors(self) -> int:
        """Processors currently allocated (grid + local)."""
        return self._used_grid + self._used_local

    @property
    def grid_processors(self) -> int:
        """Processors currently allocated to KOALA-managed jobs."""
        return self._used_grid

    @property
    def local_processors(self) -> int:
        """Processors currently allocated to local background jobs."""
        return self._used_local

    @property
    def failed_processors(self) -> int:
        """Processors currently down (unavailable to any allocation)."""
        return self._failed

    @property
    def available_processors(self) -> int:
        """Processors currently up (total minus failed)."""
        return self._total - self._failed

    @property
    def idle_processors(self) -> int:
        """Processors currently idle (up and unallocated).

        Never negative: in the short window between a failure striking busy
        nodes and the victim allocations being torn down, failed + used may
        transiently exceed the total, and the clamp keeps every placement and
        grow decision safe during it.
        """
        # Computed inline (not via ``used_processors``): this property is the
        # single most queried quantity of a run — every KIS poll and every
        # placement/grow decision reads it for every cluster.
        idle = self._total - self._failed - self._used_grid - self._used_local
        return idle if idle > 0 else 0

    @property
    def utilization(self) -> float:
        """Fraction of the cluster currently busy."""
        return self.used_processors / self._total

    @property
    def active_allocations(self) -> List[Allocation]:
        """Allocations currently held, oldest first.

        Grant times are non-decreasing and the allocation map preserves
        insertion order, so registration order *is* oldest-first (a stable
        sort on ``granted_at`` would return exactly this list).
        """
        return list(self._allocations.values())

    # -- allocate / release ----------------------------------------------------

    def try_allocate(self, processors: int, owner: str, kind: str = "grid") -> Optional[Allocation]:
        """Atomically allocate *processors* nodes, or return ``None`` if unavailable."""
        if processors < 1:
            raise AllocationError("cannot allocate fewer than one processor")
        if processors > self.idle_processors:
            return None
        allocation = Allocation(
            cluster=self,
            processors=int(processors),
            owner=owner,
            kind=kind,
            granted_at=self.env.now,
        )
        if kind == "grid":
            self._used_grid += processors
        else:
            self._used_local += processors
        self._allocations[allocation.allocation_id] = allocation
        if self._state is not None:
            self._state.update_usage(self._state_index, self._used_grid, self._used_local)
        self._record_usage()
        return allocation

    def allocate(self, processors: int, owner: str, kind: str = "grid") -> Allocation:
        """Allocate *processors* nodes or raise :class:`AllocationError`."""
        allocation = self.try_allocate(processors, owner, kind)
        if allocation is None:
            raise AllocationError(
                f"cluster {self.name!r} has only {self.idle_processors} idle processors, "
                f"cannot allocate {processors}"
            )
        return allocation

    def release(self, allocation: Allocation) -> None:
        """Release a previously granted allocation."""
        if allocation.allocation_id not in self._allocations:
            raise AllocationError(f"{allocation!r} is not held on cluster {self.name!r}")
        del self._allocations[allocation.allocation_id]
        if allocation.kind == "grid":
            self._used_grid -= allocation.processors
        else:
            self._used_local -= allocation.processors
        allocation.released_at = self.env.now
        if self._state is not None:
            self._state.update_usage(self._state_index, self._used_grid, self._used_local)
        self._record_usage()
        for listener in list(self._release_listeners):
            listener(allocation)
        self._notify_release()

    def when_released(self) -> Event:
        """Return an event that triggers the next time processors are released."""
        event = Event(self.env)
        self._release_waiters.append(event)
        return event

    def add_release_listener(self, callback) -> None:
        """Invoke ``callback(allocation)`` every time an allocation is released."""
        self._release_listeners.append(callback)

    # -- dynamic availability (fault injection) -------------------------------

    def mark_failed(self, processors: int) -> None:
        """Take *processors* nodes down (they stop being allocatable).

        Pure capacity bookkeeping: the caller (the fault injector) is
        responsible for tearing down any allocation whose nodes died —
        marking first and releasing second keeps the idle count from ever
        overstating capacity while victims are being dismantled.
        """
        if processors < 0:
            raise ValueError("cannot fail a negative number of processors")
        if self._failed + processors > self._total:
            raise ValueError(
                f"cluster {self.name!r} has {self._total - self._failed} processors "
                f"up, cannot fail {processors}"
            )
        if processors == 0:
            return
        self._failed += processors
        if self._state is not None:
            self._state.update_failed(self._state_index, self._failed)
        self.availability_series.record(self.env.now, self._total - self._failed)

    def mark_repaired(self, processors: int) -> None:
        """Bring *processors* previously failed nodes back into the pool."""
        if processors < 0:
            raise ValueError("cannot repair a negative number of processors")
        if processors > self._failed:
            raise ValueError(
                f"cluster {self.name!r} has only {self._failed} processors down, "
                f"cannot repair {processors}"
            )
        if processors == 0:
            return
        self._failed -= processors
        if self._state is not None:
            self._state.update_failed(self._state_index, self._failed)
        self.availability_series.record(self.env.now, self._total - self._failed)
        # Repaired capacity behaves like released capacity to anyone waiting
        # for processors (the local resource manager, the malleability
        # manager's release hooks do not apply: nothing was released).
        self._notify_release()

    # -- internals -------------------------------------------------------------

    def _notify_release(self) -> None:
        waiters, self._release_waiters = self._release_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(self.idle_processors)

    def _record_usage(self) -> None:
        # Inlined ``TimeSeries.record`` (×3): every allocate/release lands
        # here, and the step functions share one timestamp, so the in-order
        # and same-instant checks are done once instead of per series.
        now = self.env._now
        grid = self._used_grid
        local = self._used_local
        series = self.usage_series
        times = series.times
        if times and times[-1] == now:
            series.values[-1] = float(grid + local)
            self.grid_usage_series.values[-1] = float(grid)
            self.local_usage_series.values[-1] = float(local)
            return
        now = float(now)
        times.append(now)
        series.values.append(float(grid + local))
        series = self.grid_usage_series
        series.times.append(now)
        series.values.append(float(grid))
        series = self.local_usage_series
        series.times.append(now)
        series.values.append(float(local))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        failed = f", failed={self._failed}" if self._failed else ""
        return (
            f"<Cluster {self.name!r} {self.used_processors}/{self._total} busy "
            f"(grid={self._used_grid}, local={self._used_local}{failed})>"
        )
