"""Processor allocations.

An :class:`Allocation` is the record of a number of processors (nodes) handed
out by a :class:`~repro.cluster.cluster.Cluster` to some owner — a KOALA job
component, a single size-1 GRAM job managed by the MRunner, or a local
background job.  Allocations are the unit of accounting for the utilization
metrics (Figures 7(e) and 8(e)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster


class AllocationError(RuntimeError):
    """Raised when an allocation cannot be granted or is misused."""


_allocation_ids = count(1)


@dataclass
class Allocation:
    """A number of processors granted by a cluster to an owner.

    Attributes
    ----------
    cluster:
        The granting cluster.
    processors:
        How many processors (nodes) the allocation covers.
    owner:
        Free-form identifier of the entity holding the allocation (job id,
        background stream name, ...).
    kind:
        ``"grid"`` for allocations made on behalf of KOALA-managed jobs,
        ``"local"`` for background load submitted directly to the local
        resource manager.
    granted_at:
        Simulation time the allocation was granted.
    released_at:
        Simulation time it was released (``None`` while still held).
    """

    cluster: "Cluster"
    processors: int
    owner: str
    kind: str = "grid"
    granted_at: float = 0.0
    released_at: Optional[float] = None
    allocation_id: int = field(default_factory=lambda: next(_allocation_ids))

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise AllocationError("an allocation must cover at least one processor")
        if self.kind not in ("grid", "local"):
            raise AllocationError(f"unknown allocation kind {self.kind!r}")

    @property
    def active(self) -> bool:
        """Whether the allocation is still held."""
        return self.released_at is None

    @property
    def duration(self) -> float:
        """How long the allocation was (or has been) held."""
        if self.released_at is None:
            raise AllocationError("allocation is still active")
        return self.released_at - self.granted_at

    def release(self) -> None:
        """Return the processors to the cluster."""
        self.cluster.release(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.active else "released"
        return (
            f"<Allocation #{self.allocation_id} {self.processors}p on "
            f"{self.cluster.name!r} for {self.owner!r} ({self.kind}, {state})>"
        )
