"""GRAM-like job submission endpoints.

KOALA starts processes on a cluster through the Globus GRAM service of that
cluster.  GRAM itself cannot manage malleable jobs, so the paper's MRunner
manages every malleable application as *a collection of GRAM jobs of size 1*:
growing submits new size-1 GRAM jobs (each paying the full submission
latency, although these submissions overlap with application execution), and
shrinking releases some of them once the application has given the
processors back.

To cut the cost of turning a new GRAM job into an application process, GRAM
submissions launch an empty *stub*; recruiting the stub into the application
during the process-management phase is much faster than a full submission
because it skips security enforcement and queue management.  The endpoint
therefore exposes two latencies:

* ``submission_latency`` — submit-to-active time of a GRAM job (stub started);
* ``recruit_latency`` — time to turn an active stub into an application
  process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import List, Optional

import numpy as np

from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.sim.core import Environment
from repro.sim.events import Event

_gram_job_ids = count(1)


class GramSubmissionError(RuntimeError):
    """Raised when a GRAM submission cannot obtain its processors."""

    def __init__(self, cluster_name: str, requested: int, idle: int) -> None:
        super().__init__(
            f"GRAM submission of {requested} processor(s) failed on {cluster_name!r}: "
            f"only {idle} idle"
        )
        self.cluster_name = cluster_name
        self.requested = requested
        self.idle = idle


@dataclass
class GramJob:
    """One GRAM job: an allocation plus its lifecycle timestamps."""

    owner: str
    processors: int
    gram_id: int = field(default_factory=lambda: next(_gram_job_ids))
    submitted_at: Optional[float] = None
    active_at: Optional[float] = None
    released_at: Optional[float] = None
    allocation: Optional[Allocation] = None

    @property
    def active(self) -> bool:
        """Whether the job currently holds processors."""
        return self.allocation is not None and self.allocation.active


class GramEndpoint:
    """The GRAM submission interface of one cluster.

    Parameters
    ----------
    env, cluster:
        Simulation environment and the cluster this endpoint submits to.
    submission_latency:
        Mean time between submitting a GRAM job and its stub becoming active
        (seconds).  Includes authentication, queue handling and process
        start-up.
    recruit_latency:
        Mean time to convert an active stub into an application process.
    latency_jitter:
        Relative jitter applied to both latencies when *rng* is given (a
        value of 0.2 means +/-20% uniform).
    rng:
        Optional random generator for latency jitter.
    max_concurrent_submissions:
        How many submissions the GRAM gatekeeper handles simultaneously.
        ``None`` means unlimited.  The real Globus gatekeeper (security
        handshake, queue interaction) effectively serialises submissions,
        which is the main reason the paper calls the size-1-GRAM-jobs
        strategy poorly reactive: growing a job by many processors takes many
        submission latencies, not one.
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        *,
        submission_latency: float = 5.0,
        recruit_latency: float = 0.5,
        latency_jitter: float = 0.2,
        rng: Optional[np.random.Generator] = None,
        max_concurrent_submissions: Optional[int] = None,
    ) -> None:
        if submission_latency < 0 or recruit_latency < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= latency_jitter < 1.0:
            raise ValueError("latency_jitter must lie in [0, 1)")
        if max_concurrent_submissions is not None and max_concurrent_submissions < 1:
            raise ValueError("max_concurrent_submissions must be >= 1 (or None)")
        self.env = env
        self.cluster = cluster
        self.submission_latency = float(submission_latency)
        self.recruit_latency = float(recruit_latency)
        self.latency_jitter = float(latency_jitter)
        self._rng = rng
        self.max_concurrent_submissions = max_concurrent_submissions
        if max_concurrent_submissions is not None:
            from repro.sim.resources import Resource

            self._gatekeeper: Optional[Resource] = Resource(env, max_concurrent_submissions)
        else:
            self._gatekeeper = None
        #: GRAM jobs currently live at this endpoint.  Refused and released
        #: jobs are pruned immediately — at streaming workload sizes
        #: (hundreds of thousands of jobs) a grows-forever history would
        #: dominate the resident set.
        self.jobs: List[GramJob] = []
        #: Lifetime submission counter (the history the pruned list no
        #: longer provides).
        self.submitted_count: int = 0

    # -- latency model -----------------------------------------------------

    def _jittered(self, latency: float) -> float:
        if self._rng is None or self.latency_jitter == 0.0 or latency == 0.0:
            return latency
        factor = 1.0 + self._rng.uniform(-self.latency_jitter, self.latency_jitter)
        return max(0.0, latency * factor)

    # -- submission --------------------------------------------------------

    def submit(self, owner: str, processors: int = 1) -> Event:
        """Submit a GRAM job of *processors* nodes on behalf of *owner*.

        Returns an event that succeeds with the :class:`GramJob` once the
        job's stub is active (processors held), or fails with
        :class:`GramSubmissionError` if the processors are no longer
        available when the submission reaches the local resource manager.
        """
        if processors < 1:
            raise ValueError("a GRAM job needs at least one processor")
        job = GramJob(owner=owner, processors=int(processors))
        job.submitted_at = self.env.now
        self.jobs.append(job)
        self.submitted_count += 1
        done = Event(self.env)
        self.env.process(self._submission(job, done))
        return done

    def _submission(self, job: GramJob, done: Event):
        if self._gatekeeper is not None:
            # Wait for a gatekeeper slot: submissions queue behind each other.
            with self._gatekeeper.request() as slot:
                yield slot
                yield self.env.timeout(self._jittered(self.submission_latency))
        else:
            yield self.env.timeout(self._jittered(self.submission_latency))
        allocation = self.cluster.try_allocate(job.processors, owner=job.owner, kind="grid")
        if allocation is None:
            error = GramSubmissionError(
                self.cluster.name, job.processors, self.cluster.idle_processors
            )
            # A refused submission is an expected outcome (the caller decides
            # what to do about it), not a simulation error: pre-defuse so the
            # environment does not abort if the caller has not started
            # waiting on this particular submission yet.
            done.defused = True
            done.fail(error)
            if job in self.jobs:
                self.jobs.remove(job)
            return
        job.allocation = allocation
        job.active_at = self.env.now
        done.succeed(job)

    def recruit(self, job: GramJob) -> Event:
        """Turn the active stub of *job* into an application process.

        Returns an event that succeeds after the (short) recruitment latency.
        Recruiting is how the MRunner hands freshly obtained processors to the
        running application without paying another full GRAM submission.
        """
        if not job.active:
            raise GramSubmissionError(self.cluster.name, job.processors, 0)
        return self.env.timeout(self._jittered(self.recruit_latency), value=job)

    def release(self, job: GramJob) -> None:
        """Release the processors held by *job* (after the application shrank)."""
        if job.allocation is not None and job.allocation.active:
            job.allocation.release()
        job.released_at = self.env.now
        if job in self.jobs:
            self.jobs.remove(job)

    # -- inspection ----------------------------------------------------------

    @property
    def active_jobs(self) -> List[GramJob]:
        """GRAM jobs currently holding processors."""
        return [job for job in self.jobs if job.active]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GramEndpoint on {self.cluster.name!r} ({len(self.active_jobs)} active jobs)>"
