"""Inter-cluster network model.

The wide-area interconnect matters for two of KOALA's placement policies:

* **Close-to-Files (CF)** ranks clusters by the time needed to transfer a
  job's input files to them;
* **Cluster Minimization (CM/FCM)** tries to reduce the number of clusters a
  co-allocated job spans because inter-cluster messages are much slower than
  intra-cluster ones.

The experiments of the paper run every job inside a single cluster and order
no staging, so the network model only has to provide consistent estimates —
a full packet-level simulation is unnecessary.  :class:`NetworkModel` keeps a
symmetric latency/bandwidth matrix with sensible wide-area defaults and
computes file-transfer times from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple


@dataclass(frozen=True)
class Link:
    """Directed network link characteristics between two sites."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, megabytes: float) -> float:
        """Time to move *megabytes* MB over this link (seconds)."""
        if megabytes < 0:
            raise ValueError("megabytes must be non-negative")
        if megabytes == 0:
            return 0.0
        return self.latency + megabytes / self.bandwidth


class NetworkModel:
    """Symmetric latency/bandwidth estimates between clusters.

    Parameters
    ----------
    default_local:
        Link used within a single cluster (fast Myri-10G style).
    default_remote:
        Link used between clusters when no explicit entry exists
        (1-10 Gbit/s wide-area Ethernet style).
    """

    def __init__(
        self,
        *,
        default_local: Link = Link(latency=1e-4, bandwidth=1200.0),
        default_remote: Link = Link(latency=2e-3, bandwidth=120.0),
    ) -> None:
        self.default_local = default_local
        self.default_remote = default_remote
        self._links: Dict[Tuple[str, str], Link] = {}

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def set_link(self, a: str, b: str, link: Link) -> None:
        """Define the link between sites *a* and *b* (symmetric)."""
        self._links[self._key(a, b)] = link

    def link(self, a: str, b: str) -> Link:
        """The link between sites *a* and *b* (falls back to defaults)."""
        if a == b:
            return self._links.get(self._key(a, b), self.default_local)
        return self._links.get(self._key(a, b), self.default_remote)

    def transfer_time(self, source: str, destination: str, megabytes: float) -> float:
        """Estimated time to move *megabytes* MB from *source* to *destination*."""
        return self.link(source, destination).transfer_time(megabytes)

    def best_source(
        self, destination: str, sources: Iterable[str], megabytes: float
    ) -> Optional[Tuple[str, float]]:
        """The source site minimising transfer time to *destination*.

        Returns ``(site, transfer_time)`` or ``None`` when *sources* is empty.
        """
        best: Optional[Tuple[str, float]] = None
        for site in sources:
            t = self.transfer_time(site, destination, megabytes)
            if best is None or t < best[1]:
                best = (site, t)
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NetworkModel {len(self._links)} explicit links>"
