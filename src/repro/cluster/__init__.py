"""Multicluster execution substrate.

The paper's experiments run on the DAS-3, a Dutch wide-area system of five
clusters (Table I) in which each cluster is managed by the Sun Grid Engine in
space-shared mode with node-granular allocation, jobs are started through
Globus GRAM, and local users may submit jobs directly to a cluster's resource
manager, bypassing the KOALA grid scheduler entirely.

This package simulates that substrate:

* :class:`~repro.cluster.cluster.Cluster` — a pool of nodes with atomic
  allocate/release and a usage time series;
* :class:`~repro.cluster.local_rm.LocalResourceManager` — the SGE-like
  space-shared FCFS manager through which *local* (background) jobs arrive;
* :class:`~repro.cluster.gram.GramEndpoint` — the job-submission interface
  used by KOALA runners, with configurable submission/claim latencies and the
  faster "stub re-use" path the MRunner relies on;
* :class:`~repro.cluster.background.BackgroundLoadGenerator` — synthetic
  local users generating background load that bypasses KOALA;
* :class:`~repro.cluster.network.NetworkModel` — inter-cluster
  latency/bandwidth estimates used by the file-aware and communication-aware
  placement policies;
* :class:`~repro.cluster.multicluster.Multicluster` — the whole system;
* :func:`~repro.cluster.das3.das3_multicluster` — the DAS-3 preset of
  Table I.
"""

from repro.cluster.allocation import Allocation, AllocationError
from repro.cluster.cluster import Cluster
from repro.cluster.local_rm import LocalJob, LocalResourceManager
from repro.cluster.gram import GramEndpoint, GramJob, GramSubmissionError
from repro.cluster.background import BackgroundLoadGenerator, BackgroundLoadSpec
from repro.cluster.network import Link, NetworkModel
from repro.cluster.multicluster import Multicluster
from repro.cluster.das3 import DAS3_CLUSTERS, ClusterSpec, das3_multicluster

__all__ = [
    "Allocation",
    "AllocationError",
    "BackgroundLoadGenerator",
    "BackgroundLoadSpec",
    "Cluster",
    "ClusterSpec",
    "DAS3_CLUSTERS",
    "GramEndpoint",
    "GramJob",
    "GramSubmissionError",
    "Link",
    "LocalJob",
    "LocalResourceManager",
    "Multicluster",
    "NetworkModel",
    "das3_multicluster",
]
