"""SGE-like local resource manager.

Each DAS-3 cluster runs the Sun Grid Engine configured for exclusive,
space-shared node allocation.  Local users submit rigid jobs directly to the
SGE instance, *bypassing* KOALA; the paper explicitly calls out that a
multicluster scheduler must be resilient to that background load.

:class:`LocalResourceManager` reproduces the relevant behaviour: a FCFS
queue of rigid local jobs, each holding a fixed number of nodes for a fixed
duration, with optional EASY-style backfilling (disabled by default to match
the plain FCFS configuration used on the testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Deque, Dict, List, Optional
from collections import deque

from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt
from repro.sim.process import Process

_local_job_ids = count(1)


@dataclass
class LocalJob:
    """A rigid job submitted directly to a cluster's local resource manager."""

    processors: int
    duration: float
    name: str = ""
    job_id: int = field(default_factory=lambda: next(_local_job_ids))
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("local jobs need at least one processor")
        if self.duration <= 0:
            raise ValueError("local jobs need a positive duration")
        if not self.name:
            self.name = f"local-{self.job_id}"

    @property
    def finished(self) -> bool:
        """Whether the job has completed."""
        return self.finish_time is not None

    @property
    def wait_time(self) -> float:
        """Queue wait time (valid once the job has started)."""
        if self.submit_time is None or self.start_time is None:
            raise ValueError(f"job {self.name!r} has not started")
        return self.start_time - self.submit_time


class LocalResourceManager:
    """Space-shared FCFS manager for local (background) jobs on one cluster.

    Parameters
    ----------
    env, cluster:
        The simulation environment and the managed cluster.
    backfilling:
        When ``True``, jobs behind a blocked queue head may start if they fit
        in the currently idle processors (aggressive backfilling without
        reservations).  The DAS-3 configuration modelled by default is plain
        FCFS.
    """

    def __init__(self, env: Environment, cluster: Cluster, *, backfilling: bool = False) -> None:
        self.env = env
        self.cluster = cluster
        self.backfilling = backfilling
        self._queue: Deque[LocalJob] = deque()
        self._completion_events: Dict[int, Event] = {}
        self._finished: List[LocalJob] = []
        #: Running jobs keyed by allocation id (for fault injection).
        self._running: Dict[int, "tuple[LocalJob, Allocation, Process]"] = {}
        self._wakeup: Optional[Event] = None
        self._dispatcher = env.process(self._dispatch_loop())

    # -- public interface ------------------------------------------------------

    def submit(self, job: LocalJob) -> Event:
        """Queue *job*; returns an event that succeeds (with the job) at completion."""
        job.submit_time = self.env.now
        done = Event(self.env)
        self._completion_events[job.job_id] = done
        self._queue.append(job)
        self._kick()
        return done

    @property
    def queue_length(self) -> int:
        """Number of local jobs waiting to start."""
        return len(self._queue)

    @property
    def finished_jobs(self) -> List[LocalJob]:
        """Local jobs that have completed, in completion order."""
        return list(self._finished)

    def fail_allocation(self, allocation: Allocation) -> bool:
        """Kill the running local job holding *allocation* (a node failed).

        Local jobs are rigid: losing any node terminates the whole job early.
        Returns ``True`` if a job was killed, ``False`` when the allocation is
        not one of this manager's running jobs.  The processors come back to
        the pool when the interrupted job process releases them — the fault
        injector marks the dead ones failed *before* calling this, so the
        release cannot be double-promised.
        """
        # Popped immediately: a second failure striking the same job in the
        # same instant (e.g. two trace lines at one timestamp) must be a
        # no-op, not a second interrupt thrown into a finished generator.
        entry = self._running.pop(allocation.allocation_id, None)
        if entry is None:
            return False
        _, _, process = entry
        if process.is_alive:
            process.interrupt("node failure")
        return True

    # -- dispatcher -------------------------------------------------------------

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _dispatch_loop(self):
        while True:
            self._start_eligible_jobs()
            # Sleep until either a new submission arrives or processors are
            # released on the cluster.
            self._wakeup = Event(self.env)
            released = self.cluster.when_released()
            yield self._wakeup | released
            self._wakeup = None

    def _start_eligible_jobs(self) -> None:
        started = True
        while started:
            started = False
            if not self._queue:
                return
            head = self._queue[0]
            if head.processors <= self.cluster.idle_processors:
                self._queue.popleft()
                self._start(head)
                started = True
            elif self.backfilling:
                # Start the first later job that fits (no reservation for the
                # head, i.e. aggressive backfilling).
                for job in list(self._queue)[1:]:
                    if job.processors <= self.cluster.idle_processors:
                        self._queue.remove(job)
                        self._start(job)
                        started = True
                        break

    def _start(self, job: LocalJob) -> None:
        allocation = self.cluster.allocate(job.processors, owner=job.name, kind="local")
        job.start_time = self.env.now
        process = self.env.process(self._run(job, allocation))
        self._running[allocation.allocation_id] = (job, allocation, process)

    def _run(self, job: LocalJob, allocation):
        try:
            yield self.env.timeout(job.duration)
        except Interrupt:
            pass  # killed by a node failure: terminate early
        self._running.pop(allocation.allocation_id, None)
        if allocation.active:
            allocation.release()
        job.finish_time = self.env.now
        self._finished.append(job)
        done = self._completion_events.pop(job.job_id, None)
        if done is not None and not done.triggered:
            done.succeed(job)
