"""The multicluster system: clusters + their per-cluster services.

A :class:`Multicluster` bundles, for each member cluster, the cluster pool
itself, its SGE-like local resource manager, its GRAM endpoint and (possibly)
a background-load generator, plus the shared wide-area network model and a
replica catalogue of file locations for the Close-to-Files policy.  It is the
single object the KOALA scheduler needs a reference to.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


from repro.cluster.background import BackgroundLoadGenerator, BackgroundLoadSpec
from repro.cluster.cluster import Cluster
from repro.cluster.gram import GramEndpoint
from repro.cluster.local_rm import LocalResourceManager
from repro.cluster.network import NetworkModel
from repro.cluster.state import ClusterState
from repro.sim.core import Environment
from repro.sim.monitor import merge_step_functions
from repro.sim.rng import RandomStreams


class Multicluster:
    """A collection of clusters and their per-cluster services.

    Parameters
    ----------
    env:
        Simulation environment.
    network:
        Wide-area network model (defaults to a fresh :class:`NetworkModel`).
    streams:
        Named random streams; used for GRAM latency jitter and background
        load.  A deterministic default is created when omitted.
    gram_submission_latency / gram_recruit_latency:
        Latency parameters applied to every cluster's GRAM endpoint.
    gram_latency_jitter:
        Relative jitter of those latencies (``0`` makes GRAM fully
        deterministic and draws nothing from the random streams, which is
        what the checkpoint/shard-replay machinery relies on).
    gram_concurrency:
        Maximum simultaneous GRAM submissions per cluster (``None`` =
        unlimited); see :class:`~repro.cluster.gram.GramEndpoint`.
    local_backfilling:
        Whether the local resource managers backfill small local jobs past a
        blocked queue head (common in production SGE configurations).
    """

    def __init__(
        self,
        env: Environment,
        *,
        network: Optional[NetworkModel] = None,
        streams: Optional[RandomStreams] = None,
        gram_submission_latency: float = 5.0,
        gram_recruit_latency: float = 0.5,
        gram_latency_jitter: float = 0.2,
        gram_concurrency: Optional[int] = None,
        local_backfilling: bool = False,
    ) -> None:
        self.env = env
        self.network = network or NetworkModel()
        self.streams = streams or RandomStreams(seed=0)
        self.gram_submission_latency = gram_submission_latency
        self.gram_recruit_latency = gram_recruit_latency
        self.gram_latency_jitter = gram_latency_jitter
        self.gram_concurrency = gram_concurrency
        self.local_backfilling = local_backfilling
        self._clusters: Dict[str, Cluster] = {}
        self._local_rms: Dict[str, LocalResourceManager] = {}
        self._gram: Dict[str, GramEndpoint] = {}
        self._background: Dict[str, BackgroundLoadGenerator] = {}
        #: Struct-of-arrays mirror of the member clusters' capacity counters
        #: (see :mod:`repro.cluster.state`); the KIS, the scheduler and the
        #: placement fast paths read it instead of scanning cluster objects.
        self.state = ClusterState()
        self._cluster_names: List[str] = []
        #: File replica catalogue: file name -> set of cluster names holding it.
        self.replica_catalogue: Dict[str, set] = {}

    # -- construction ----------------------------------------------------------

    def add_cluster(
        self,
        name: str,
        processors: int,
        *,
        location: str = "",
        interconnect: str = "",
        background: Optional[BackgroundLoadSpec] = None,
    ) -> Cluster:
        """Create and register a cluster with its local services."""
        if name in self._clusters:
            raise ValueError(f"cluster {name!r} already exists")
        cluster = Cluster(
            self.env, name, processors, location=location, interconnect=interconnect
        )
        self._clusters[name] = cluster
        self._cluster_names.append(name)
        cluster.bind_state(self.state, self.state.register(name, processors))
        self._local_rms[name] = LocalResourceManager(
            self.env, cluster, backfilling=self.local_backfilling
        )
        self._gram[name] = GramEndpoint(
            self.env,
            cluster,
            submission_latency=self.gram_submission_latency,
            recruit_latency=self.gram_recruit_latency,
            latency_jitter=self.gram_latency_jitter,
            # With zero jitter the endpoint never draws, so skip lane
            # instantiation entirely — checkpointed runs then carry no
            # per-cluster GRAM lanes in their RNG state.
            rng=(
                self.streams[f"gram:{name}"] if self.gram_latency_jitter else None
            ),
            max_concurrent_submissions=self.gram_concurrency,
        )
        if background is not None and background.enabled:
            self._background[name] = BackgroundLoadGenerator(
                self.env,
                self._local_rms[name],
                background,
                self.streams[f"background:{name}"],
            )
        return cluster

    def register_replica(self, file_name: str, cluster_name: str) -> None:
        """Record that *file_name* is stored at *cluster_name* (for CF placement)."""
        if cluster_name not in self._clusters:
            raise KeyError(f"unknown cluster {cluster_name!r}")
        self.replica_catalogue.setdefault(file_name, set()).add(cluster_name)

    def replica_sites(self, file_name: str) -> set:
        """Cluster names holding a replica of *file_name* (empty set if unknown)."""
        return set(self.replica_catalogue.get(file_name, set()))

    # -- lookup ----------------------------------------------------------------

    @property
    def clusters(self) -> List[Cluster]:
        """All member clusters, in registration order."""
        return list(self._clusters.values())

    @property
    def cluster_names(self) -> List[str]:
        """Names of all member clusters, in registration order.

        The returned list is shared (clusters are never removed); callers
        that want to mutate it must copy.
        """
        return self._cluster_names

    def cluster(self, name: str) -> Cluster:
        """The cluster registered under *name*."""
        try:
            return self._clusters[name]
        except KeyError:
            raise KeyError(f"unknown cluster {name!r}; known: {self.cluster_names}") from None

    def local_rm(self, name: str) -> LocalResourceManager:
        """The local resource manager of cluster *name*."""
        return self._local_rms[name]

    def gram(self, name: str) -> GramEndpoint:
        """The GRAM endpoint of cluster *name*."""
        return self._gram[name]

    def background(self, name: str) -> Optional[BackgroundLoadGenerator]:
        """The background-load generator of cluster *name* (or ``None``)."""
        return self._background.get(name)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self._clusters.values())

    def __len__(self) -> int:
        return len(self._clusters)

    def __contains__(self, name: str) -> bool:
        return name in self._clusters

    # -- aggregate state ---------------------------------------------------------

    @property
    def total_processors(self) -> int:
        """Total number of processors over all clusters."""
        return sum(c.total_processors for c in self._clusters.values())

    @property
    def idle_processors(self) -> int:
        """Total number of idle processors over all clusters."""
        return sum(c.idle_processors for c in self._clusters.values())

    @property
    def available_processors(self) -> int:
        """Total number of up (non-failed) processors over all clusters."""
        return sum(c.available_processors for c in self._clusters.values())

    @property
    def used_processors(self) -> int:
        """Total number of busy processors over all clusters."""
        return sum(c.used_processors for c in self._clusters.values())

    def utilization_series(self, kind: str = "all"):
        """Summed usage step function over all clusters.

        ``kind`` selects ``"all"``, ``"grid"`` (KOALA-managed only) or
        ``"local"`` (background only) usage.  Returns ``(times, values)``.
        """
        if kind == "all":
            series = (c.usage_series for c in self._clusters.values())
        elif kind == "grid":
            series = (c.grid_usage_series for c in self._clusters.values())
        elif kind == "local":
            series = (c.local_usage_series for c in self._clusters.values())
        else:
            raise ValueError(f"unknown usage kind {kind!r}")
        return merge_step_functions(series)

    def availability_series(self):
        """Summed step function of up (non-failed) processors over all clusters.

        Flat at :attr:`total_processors` unless a fault model drove node
        churn; the resilience metrics normalise utilization against it.
        Returns ``(times, values)``.
        """
        return merge_step_functions(
            c.availability_series for c in self._clusters.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Multicluster {len(self)} clusters, "
            f"{self.used_processors}/{self.total_processors} processors busy>"
        )
